package journey

import (
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/trace"
)

func TestTraceIDDeterministic(t *testing.T) {
	a := TraceID(7, "bursty", 42)
	if b := TraceID(7, "bursty", 42); a != b {
		t.Fatalf("same triple produced %q and %q", a, b)
	}
	if len(a) != 16 {
		t.Fatalf("trace ID %q is not 16 hex chars", a)
	}
	distinct := map[string]bool{a: true}
	for _, id := range []string{TraceID(8, "bursty", 42), TraceID(7, "steady", 42), TraceID(7, "bursty", 43)} {
		if distinct[id] {
			t.Fatalf("trace ID collision on %q", id)
		}
		distinct[id] = true
	}
}

// span replays one charge into the journey, in the shape the runtime's
// charge point would deliver it.
func span(j *Job, cat trace.Category, track string, start, end sim.Time, bytes int64) {
	j.NoteSpan(cat, trace.Lane{Node: 0, Track: track}, "t", start, end, bytes)
}

func TestJobPartitionsLatencyExactly(t *testing.T) {
	r := NewRecorder(1, 0)
	j := r.Admit("a", 0, "gemm", 128, 100, []string{"feedcafefeedcafe"})
	j.Dispatched(250)
	span(j, trace.BufferSetup, "alloc", 250, 260, 64)
	span(j, trace.IO, "io", 260, 500, 4096)
	// Gap 500..600 is time the proc waited between operations -> blocked.
	span(j, trace.GPUCompute, "gpu", 600, 900, 16)
	j.Mark(PhaseMerge)
	span(j, trace.Transfer, "xfer", 900, 1000, 4096)
	j.Mark("")
	j.Finish(1100, false)

	if got, want := j.PhaseSum(), int64(j.Latency()); got != want {
		t.Fatalf("PhaseSum %d != Latency %d", got, want)
	}
	byName := map[string]PhaseTotal{}
	for _, pt := range j.Phases() {
		byName[pt.Phase] = pt
	}
	for phase, ns := range map[string]int64{
		PhaseAdmitWait: 0, PhaseQueueWait: 150, "alloc:node0/alloc": 10,
		"stage:node0/io": 240, PhaseBlocked: 200, "kernel:node0/gpu": 300,
		PhaseMerge: 100,
	} {
		if byName[phase].NS != ns {
			t.Fatalf("phase %q = %dns, want %d (phases %+v)", phase, byName[phase].NS, ns, j.Phases())
		}
	}
	if byName["stage:node0/io"].Bytes != 4096 || byName[PhaseMerge].Bytes != 4096 {
		t.Fatalf("staging bytes lost: %+v", j.Phases())
	}
	segs, drop := j.Segments()
	if drop != 0 {
		t.Fatalf("dropped %d segments under the default cap", drop)
	}
	var sum int64
	cursor := int64(j.Arrive)
	for _, s := range segs {
		if s.StartNS != cursor {
			t.Fatalf("segment %+v does not tile (cursor %d)", s, cursor)
		}
		cursor = s.StartNS + s.DurNS
		sum += s.DurNS
	}
	if sum != int64(j.Latency()) || cursor != int64(j.Done) {
		t.Fatalf("segments sum %d (end %d), want latency %d ending %d", sum, cursor, j.Latency(), j.Done)
	}
	if j.CategoryBusy(trace.IO) != 240 || j.CategoryBusy(trace.GPUCompute) != 300 {
		t.Fatalf("category busy: io=%d gpu=%d", j.CategoryBusy(trace.IO), j.CategoryBusy(trace.GPUCompute))
	}
}

func TestCoalesceAndSegmentCap(t *testing.T) {
	r := NewRecorder(1, 4)
	j := r.Admit("a", 1, "sort", 10, 0, nil)
	j.Dispatched(0)
	// Two contiguous same-phase charges coalesce into one segment.
	span(j, trace.IO, "io", 0, 10, 1)
	span(j, trace.IO, "io", 10, 20, 1)
	segs, _ := j.Segments()
	// admit-wait and queue-wait are zero-length at start; the io pair is one.
	if n := len(segs); n != 3 {
		t.Fatalf("got %d segments %+v, want 3 (coalesced io)", n, segs)
	}
	if segs[2].DurNS != 20 || segs[2].Bytes != 2 {
		t.Fatalf("coalesced segment %+v", segs[2])
	}
	// Alternate phases past the cap: totals stay exact, segments drop.
	for i := 0; i < 10; i++ {
		start := sim.Time(100 + 20*i)
		span(j, trace.GPUCompute, "gpu", start, start+10, 0)
	}
	j.Finish(300, false)
	if got, want := j.PhaseSum(), int64(j.Latency()); got != want {
		t.Fatalf("PhaseSum %d != Latency %d after cap", got, want)
	}
	if _, drop := j.Segments(); drop == 0 {
		t.Fatal("cap of 4 never dropped a segment")
	}
}

func TestTailRankAndShares(t *testing.T) {
	r := NewRecorder(3, 0)
	mk := func(id int, lat sim.Time) *Job {
		j := r.Admit("a", id, "gemm", 64, 0, nil)
		j.Dispatched(0)
		span(j, trace.IO, "io", 0, lat/2, 0)
		span(j, trace.GPUCompute, "gpu", lat/2, lat, 0)
		j.Finish(lat, false)
		r.Complete(j)
		return j
	}
	for i := 0; i < 100; i++ {
		mk(i, sim.Time(1000+i))
	}
	rep := Tail(r.Jobs(), 0.99)
	if len(rep.Tenants) != 1 {
		t.Fatalf("tenants = %d", len(rep.Tenants))
	}
	tt := rep.Tenants[0]
	if tt.Jobs != 100 || tt.TailJobs != 2 || tt.ThresholdNS != 1098 {
		t.Fatalf("tail stats %+v, want 100 jobs, 2 in tail, threshold 1098", tt)
	}
	if tt.Exemplar == nil || tt.Exemplar.ID != 98 {
		t.Fatalf("exemplar = %+v, want job 98 (the p99 pivot)", tt.Exemplar)
	}
	var total int64
	for _, ps := range tt.Phases {
		total += ps.NS
	}
	var want int64
	for _, j := range r.Jobs()[98:] {
		want += int64(j.Latency())
	}
	if total != want {
		t.Fatalf("tail phase total %d != tail latency sum %d", total, want)
	}
	if sp := tt.SlowestPhase(); sp != "stage:node0/io" && sp != "kernel:node0/gpu" {
		t.Fatalf("slowest phase %q", sp)
	}
	if !strings.Contains(rep.String(), "tenant a:") {
		t.Fatalf("report missing tenant section:\n%s", rep.String())
	}
}

func TestChromeEventsWaterfallRoundTrip(t *testing.T) {
	r := NewRecorder(9, 0)
	j := r.Admit("b", 2, "spmv", 2000, 50, nil)
	j.Dispatched(100)
	span(j, trace.IO, "io", 100, 400, 4096)
	j.Finish(500, false)
	r.Complete(j)

	evs := ChromeEvents(r.Jobs(), 1000)
	if len(evs) == 0 {
		t.Fatal("no chrome events")
	}
	for i, ev := range evs {
		if ev.Lane.Track != JobTrack(j.TraceID) || ev.Lane.Node != trace.NoNode {
			t.Fatalf("event lane %+v", ev.Lane)
		}
		if ev.Seq != 1000+uint64(i) {
			t.Fatalf("seq %d at %d, want base+index", ev.Seq, i)
		}
	}
	if MaxSeq(evs) != evs[len(evs)-1].Seq {
		t.Fatalf("MaxSeq = %d", MaxSeq(evs))
	}
	wf, err := WaterfallFromEvents(evs, j.TraceID)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{j.TraceID, "stage:node0/io", PhaseQueueWait, "450ns"} {
		if !strings.Contains(wf, want) {
			t.Fatalf("waterfall missing %q:\n%s", want, wf)
		}
	}
	if _, err := WaterfallFromEvents(evs, "deadbeef"); err == nil || !strings.Contains(err.Error(), j.TraceID) {
		t.Fatalf("unknown ID error should list available journeys, got %v", err)
	}
}

func TestExportDocReconciles(t *testing.T) {
	r := NewRecorder(5, 0)
	j := r.Admit("a", 0, "gemm", 64, 10, nil)
	j.Dispatched(20)
	span(j, trace.IO, "io", 20, 80, 256)
	j.Finish(100, true)
	r.Complete(j)

	doc := r.Export()
	if doc.Schema != ExportSchema || doc.Seed != 5 || len(doc.Jobs) != 1 {
		t.Fatalf("export %+v", doc)
	}
	jd := doc.Jobs[0]
	if !jd.Failed || jd.LatencyNS != 90 {
		t.Fatalf("job doc %+v", jd)
	}
	var sum int64
	for _, pt := range jd.Phases {
		sum += pt.NS
	}
	if sum != jd.LatencyNS {
		t.Fatalf("exported phase sum %d != latency %d", sum, jd.LatencyNS)
	}
}
