// Package journey records deterministic per-job causal journeys for the
// serve tier: every admitted job gets a stable trace ID, and its lifecycle
// becomes an ordered sequence of phase segments — admit-wait, queue-wait,
// dispatch, per-hop staging, kernel, merge, blocked — that partition the
// job's [arrive, done) interval exactly. Phase sums therefore reconcile
// bit-for-bit against the recorded latency, and (at sample rate 1.0) the
// per-category busy totals across all journeys reconcile against the
// runtime's Breakdown, because both are fed by the same charge point
// (core.Runtime.chargeSpan mirrors every span to the job's SpanSink).
//
// The layer is observation only. Recording a journey draws no random
// numbers, charges no virtual time, and never touches the engine, so a run
// with journeys enabled executes the byte-identical job schedule of a run
// with them disabled — the serve determinism tests hold it to that.
package journey

import (
	"fmt"
	"hash/fnv"

	"repro/internal/sim"
	"repro/internal/trace"
)

// Reserved phase names. Everything else is derived from the charge's
// category and lane ("stage:node0/io", "kernel:node2", ...), or set
// explicitly via Mark (the serve bodies mark their write-back moves as
// "merge").
const (
	PhaseAdmitWait = "admit-wait"
	PhaseQueueWait = "queue-wait"
	PhaseDispatch  = "dispatch"
	PhaseBlocked   = "blocked"
	PhaseMerge     = "merge"
)

// DefaultMaxSegments bounds one job's waterfall segment list. Phase and
// category totals stay exact past the cap; only the per-segment timeline
// truncates (SegDropped counts what fell off).
const DefaultMaxSegments = 512

// TraceID derives the deterministic identifier of one job from the
// scenario seed, the tenant name and the tenant-local job index — the same
// triple that determines the job's traffic, so the ID is stable across
// runs, machines and exports.
func TraceID(seed int64, tenant string, id int) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "northup/%d/%s/%d", seed, tenant, id)
	return fmt.Sprintf("%016x", h.Sum64())
}

// Segment is one contiguous stretch of a job's timeline spent in a single
// phase. Segments are emitted in time order and partition [arrive, done).
type Segment struct {
	Phase   string `json:"phase"`
	StartNS int64  `json:"start_ns"`
	DurNS   int64  `json:"dur_ns"`
	Bytes   int64  `json:"bytes,omitempty"`
}

// PhaseTotal aggregates one phase across a job: total time, total bytes
// moved (for staging phases), and the number of raw charges folded in.
// Totals are exact even when the segment list hit its cap.
type PhaseTotal struct {
	Phase string `json:"phase"`
	NS    int64  `json:"ns"`
	Bytes int64  `json:"bytes,omitempty"`
	Count int    `json:"count,omitempty"`
}

// Job is one sampled job's journey. It implements core.SpanSink: while the
// job's root proc runs, every busy-time charge is mirrored into NoteSpan,
// and the cursor-based partition turns the charge stream into phases —
// gaps between charges (waiting on device/link contention inside moves is
// charged; waiting between operations is not) become "blocked".
type Job struct {
	TraceID  string
	Tenant   string
	ID       int
	Workload string
	N        int

	Arrive, Start, Done sim.Time
	Failed              bool

	// Behind lists, in queue order, the trace IDs of the jobs that were
	// already waiting in the tenant queue when this job was admitted — the
	// causal upstream of its queue-wait phase.
	Behind []string

	rec      *Recorder
	phases   []PhaseTotal
	phaseIdx map[string]int
	segs     []Segment
	segDrop  int
	maxSegs  int
	cursor   sim.Time
	label    string // Mark override; "" derives the phase from cat+lane
	catBusy  []sim.Time
	finished bool
}

// Mark overrides the phase name of subsequent charges until cleared with
// Mark(""). It is nil-safe so call sites need no sampling guard.
func (j *Job) Mark(label string) {
	if j == nil {
		return
	}
	j.label = label
}

// Dispatched records the queue-to-worker handoff: the zero-length
// admit-wait instant (admission is synchronous at arrival) and the
// [arrive, start) queue-wait segment, and arms the charge cursor.
func (j *Job) Dispatched(start sim.Time) {
	j.Start = start
	j.cursor = start
	j.add(PhaseAdmitWait, j.Arrive, j.Arrive, 0, trace.None)
	j.add(PhaseQueueWait, j.Arrive, start, 0, trace.None)
}

// NoteSpan implements core.SpanSink: one busy-time charge on the job's
// proc. Charges arrive in nondecreasing end order on a single proc, so the
// cursor partition is total: gap before the charge -> blocked, the charge
// itself -> its phase, cursor advances to the charge's end.
func (j *Job) NoteSpan(cat trace.Category, lane trace.Lane, name string, start, end sim.Time, value int64) {
	if j.finished {
		return
	}
	if start < j.cursor {
		start = j.cursor // defensive clamp; charges on one proc do not overlap
	}
	if end < start {
		end = start
	}
	if start > j.cursor {
		j.add(PhaseBlocked, j.cursor, start, 0, trace.None)
	}
	j.add(j.phaseFor(cat, lane), start, end, value, cat)
	j.cursor = end
}

// Finish closes the journey at the job's completion instant: any tail gap
// becomes a final blocked segment, so the segments partition [arrive, done)
// exactly and PhaseSum() == Latency() bit-for-bit.
func (j *Job) Finish(done sim.Time, failed bool) {
	if done > j.cursor {
		j.add(PhaseBlocked, j.cursor, done, 0, trace.None)
		j.cursor = done
	}
	j.Done = done
	j.Failed = failed
	j.finished = true
}

// Latency is the job's arrival-to-completion time.
func (j *Job) Latency() sim.Time { return j.Done - j.Arrive }

// PhaseSum is the sum of all phase totals. For a finished journey it equals
// Latency() exactly, by construction of the cursor partition.
func (j *Job) PhaseSum() int64 {
	var sum int64
	for _, pt := range j.phases {
		sum += pt.NS
	}
	return sum
}

// Phases returns the per-phase totals in first-seen order.
func (j *Job) Phases() []PhaseTotal { return j.phases }

// Segments returns the time-ordered phase segments (adjacent same-phase
// charges coalesced), and the count dropped past the segment cap.
func (j *Job) Segments() ([]Segment, int) { return j.segs, j.segDrop }

// CategoryBusy returns the busy time this job charged to one trace
// category — the piece of the runtime Breakdown this job owns.
func (j *Job) CategoryBusy(cat trace.Category) sim.Time {
	if cat < 0 || int(cat) >= len(j.catBusy) {
		return 0
	}
	return j.catBusy[cat]
}

// phaseFor names the phase of one charge from its category and lane.
func (j *Job) phaseFor(cat trace.Category, lane trace.Lane) string {
	if j.label != "" {
		return j.label
	}
	switch cat {
	case trace.Runtime:
		return PhaseDispatch
	case trace.BufferSetup:
		return j.rec.phaseName("alloc", lane)
	case trace.IO, trace.Transfer:
		// Per-hop staging: the lane keys the hop (storage io lane vs the
		// destination's xfer lane), so multi-hop moves split naturally.
		return j.rec.phaseName("stage", lane)
	case trace.GPUCompute:
		return j.rec.phaseName("kernel", lane)
	case trace.CPUCompute:
		return j.rec.phaseName("cpu", lane)
	case trace.PIMCompute:
		return j.rec.phaseName("pim", lane)
	case trace.FPGACompute:
		return j.rec.phaseName("fpga", lane)
	default:
		return j.rec.phaseName("other", lane)
	}
}

// add folds one interval into the phase totals, the category totals and
// the coalesced segment list.
func (j *Job) add(phase string, start, end sim.Time, bytes int64, cat trace.Category) {
	d := int64(end - start)
	i, ok := j.phaseIdx[phase]
	if !ok {
		i = len(j.phases)
		j.phases = append(j.phases, PhaseTotal{Phase: phase})
		j.phaseIdx[phase] = i
	}
	j.phases[i].NS += d
	j.phases[i].Bytes += bytes
	j.phases[i].Count++
	if cat >= 0 && int(cat) < len(j.catBusy) {
		j.catBusy[cat] += end - start
	}
	if n := len(j.segs); n > 0 {
		last := &j.segs[n-1]
		if last.Phase == phase && last.StartNS+last.DurNS == int64(start) {
			last.DurNS += d
			last.Bytes += bytes
			return
		}
	}
	if len(j.segs) >= j.maxSegs {
		j.segDrop++
		return
	}
	j.segs = append(j.segs, Segment{Phase: phase, StartNS: int64(start), DurNS: d, Bytes: bytes})
}

// Recorder owns one run's journeys: it mints jobs at admission, collects
// them at completion (in completion order, matching the serve JobRecord
// log), and interns phase-name strings so the hot path allocates no names
// after first use of a (prefix, lane) pair.
type Recorder struct {
	seed    int64
	maxSegs int
	names   map[phaseKey]string
	jobs    []*Job
	byID    map[string]*Job
}

type phaseKey struct {
	prefix string
	lane   trace.Lane
}

// NewRecorder creates a recorder for one run. maxSegments <= 0 uses
// DefaultMaxSegments.
func NewRecorder(seed int64, maxSegments int) *Recorder {
	if maxSegments <= 0 {
		maxSegments = DefaultMaxSegments
	}
	return &Recorder{
		seed:    seed,
		maxSegs: maxSegments,
		names:   make(map[phaseKey]string),
		byID:    make(map[string]*Job),
	}
}

// Seed returns the scenario seed journeys were recorded under.
func (r *Recorder) Seed() int64 { return r.seed }

// Admit mints the journey of one admitted job. behind lists the trace IDs
// already queued ahead of it.
func (r *Recorder) Admit(tenant string, id int, workload string, n int, arrive sim.Time, behind []string) *Job {
	j := &Job{
		TraceID:  TraceID(r.seed, tenant, id),
		Tenant:   tenant,
		ID:       id,
		Workload: workload,
		N:        n,
		Arrive:   arrive,
		Behind:   behind,
		rec:      r,
		phaseIdx: make(map[string]int),
		maxSegs:  r.maxSegs,
		catBusy:  make([]sim.Time, len(trace.Categories)),
	}
	r.byID[j.TraceID] = j
	return j
}

// Complete files a finished journey, in completion order.
func (r *Recorder) Complete(j *Job) { r.jobs = append(r.jobs, j) }

// Jobs returns the completed journeys in completion order.
func (r *Recorder) Jobs() []*Job { return r.jobs }

// Find returns the journey with the given trace ID, or nil.
func (r *Recorder) Find(traceID string) *Job { return r.byID[traceID] }

// phaseName interns "prefix:lane" ("stage:node0/io", "kernel:node2/gpu").
func (r *Recorder) phaseName(prefix string, lane trace.Lane) string {
	k := phaseKey{prefix: prefix, lane: lane}
	if s, ok := r.names[k]; ok {
		return s
	}
	s := prefix + ":" + lane.String()
	r.names[k] = s
	return s
}
