package sched

import "testing"

// BenchmarkDequeOwnerOps measures the owner's push/pop fast path.
func BenchmarkDequeOwnerOps(b *testing.B) {
	d := NewDeque[int]("q")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.PushTail(i)
		d.PopTail()
	}
}

// BenchmarkDequeStealPath measures the thief's path with refills.
func BenchmarkDequeStealPath(b *testing.B) {
	d := NewDeque[int]("q")
	for i := 0; i < 1024; i++ {
		d.PushTail(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if v, ok := d.StealHead(); ok {
			d.PushTail(v)
		}
	}
}

// BenchmarkStealFromScan measures victim scanning across many queues.
func BenchmarkStealFromScan(b *testing.B) {
	items := make([]int, 32)
	qs := Partition(items, 32, "q")
	// Leave work only in the last queue, worst case for the scan.
	for i := 0; i < 31; i++ {
		qs[i].PopTail()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if v, victim, ok := StealFrom(qs, 0); ok {
			qs[victim].PushTail(v)
		}
	}
}

// BenchmarkProfileSchedulerPick measures the learned-mapping hot path.
func BenchmarkProfileSchedulerPick(b *testing.B) {
	s := NewProfileScheduler()
	s.Record("gpu", 1e6, 1e6)
	s.Record("gpu", 2e6, 1.5e6)
	s.Record("cpu", 1e6, 3e6)
	s.Record("cpu", 2e6, 6e6)
	candidates := []string{"gpu", "cpu"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Pick(candidates, float64(i%100)*1e5); err != nil {
			b.Fatal(err)
		}
	}
}
