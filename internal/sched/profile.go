package sched

import (
	"encoding/json"
	"fmt"

	"repro/internal/sim"
)

// ProfileScheduler implements §III-E's profile-guided mapping: "By
// profiling the execution of earlier scheduled chunks, the system can
// provide useful information to subsequent scheduling and task-processor
// mapping."
//
// For each processor it fits a linear cost model time = fixed + size/rate
// from observed (size, time) samples and routes each new task to the
// predicted-fastest processor; unprofiled processors are tried first so
// every candidate gets sampled.
type ProfileScheduler struct {
	entries map[string]*profileEntry
	// MinSamples is how many observations a processor needs before its
	// prediction is trusted (default 2, enough to fit the line).
	MinSamples int
}

type profileEntry struct {
	n            int
	sumX, sumY   float64 // x = task size, y = seconds
	sumXX, sumXY float64
}

// NewProfileScheduler returns an empty scheduler.
func NewProfileScheduler() *ProfileScheduler {
	return &ProfileScheduler{entries: make(map[string]*profileEntry), MinSamples: 2}
}

// Record feeds one completed task: the processor that ran it, the task
// size (any consistent measure: bytes, non-zeros, cells), and the elapsed
// virtual time.
func (s *ProfileScheduler) Record(procName string, size float64, elapsed sim.Time) {
	e := s.entries[procName]
	if e == nil {
		e = &profileEntry{}
		s.entries[procName] = e
	}
	y := elapsed.Seconds()
	e.n++
	e.sumX += size
	e.sumY += y
	e.sumXX += size * size
	e.sumXY += size * y
}

// Samples returns how many observations a processor has.
func (s *ProfileScheduler) Samples(procName string) int {
	if e := s.entries[procName]; e != nil {
		return e.n
	}
	return 0
}

// Predict estimates the time for a task of the given size on a processor.
// ok is false while the processor has fewer than MinSamples observations.
func (s *ProfileScheduler) Predict(procName string, size float64) (sim.Time, bool) {
	e := s.entries[procName]
	if e == nil || e.n < s.MinSamples {
		return 0, false
	}
	nf := float64(e.n)
	denom := nf*e.sumXX - e.sumX*e.sumX
	var fixed, slope float64
	if denom <= 1e-12 {
		// Degenerate sizes: fall back to the mean rate through the origin.
		if e.sumX > 0 {
			slope = e.sumY / e.sumX
		}
	} else {
		slope = (nf*e.sumXY - e.sumX*e.sumY) / denom
		fixed = (e.sumY - slope*e.sumX) / nf
	}
	t := fixed + slope*size
	if t < 0 {
		t = 0
	}
	return sim.Seconds(t), true
}

// ProfileEntry is the serialized form of one processor's fitted samples:
// the raw least-squares sums, so an imported profile predicts exactly what
// the exporting run would have predicted (no precision lost to re-fitting).
type ProfileEntry struct {
	N     int     `json:"n"`
	SumX  float64 `json:"sum_x"`
	SumY  float64 `json:"sum_y"`
	SumXX float64 `json:"sum_xx"`
	SumXY float64 `json:"sum_xy"`
}

// ProfileSnapshot is the portable form of a ProfileScheduler: what a
// profiled run exports so a later run (an affinity scorer, a re-run of the
// same app) can warm-start instead of re-learning from cold estimates.
type ProfileSnapshot struct {
	MinSamples int                     `json:"min_samples"`
	Entries    map[string]ProfileEntry `json:"entries"`
}

// Export captures the scheduler's learned state as a snapshot.
func (s *ProfileScheduler) Export() ProfileSnapshot {
	snap := ProfileSnapshot{MinSamples: s.MinSamples, Entries: make(map[string]ProfileEntry, len(s.entries))}
	for name, e := range s.entries {
		snap.Entries[name] = ProfileEntry{N: e.n, SumX: e.sumX, SumY: e.sumY, SumXX: e.sumXX, SumXY: e.sumXY}
	}
	return snap
}

// ExportJSON renders the snapshot as JSON. encoding/json sorts map keys, so
// the bytes are deterministic for a given learned state.
func (s *ProfileScheduler) ExportJSON() ([]byte, error) {
	return json.MarshalIndent(s.Export(), "", "  ")
}

// Import merges a snapshot's samples into the scheduler, adding them to any
// already-recorded observations (sums are associative). A positive
// MinSamples in the snapshot replaces the scheduler's own.
func (s *ProfileScheduler) Import(snap ProfileSnapshot) {
	if snap.MinSamples > 0 {
		s.MinSamples = snap.MinSamples
	}
	for name, pe := range snap.Entries {
		e := s.entries[name]
		if e == nil {
			e = &profileEntry{}
			s.entries[name] = e
		}
		e.n += pe.N
		e.sumX += pe.SumX
		e.sumY += pe.SumY
		e.sumXX += pe.SumXX
		e.sumXY += pe.SumXY
	}
}

// ImportJSON parses ExportJSON output and merges it (see Import).
func (s *ProfileScheduler) ImportJSON(data []byte) error {
	var snap ProfileSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("sched: importing profile: %w", err)
	}
	s.Import(snap)
	return nil
}

// Pick chooses a processor for a task of the given size from the candidate
// names: unprofiled candidates are explored first (in order), then the one
// with the smallest predicted time wins.
func (s *ProfileScheduler) Pick(candidates []string, size float64) (string, error) {
	if len(candidates) == 0 {
		return "", fmt.Errorf("sched: Pick with no candidates")
	}
	for _, c := range candidates {
		if s.Samples(c) < s.MinSamples {
			return c, nil // exploration phase
		}
	}
	best := candidates[0]
	bestT, _ := s.Predict(best, size)
	for _, c := range candidates[1:] {
		if t, _ := s.Predict(c, size); t < bestT {
			best, bestT = c, t
		}
	}
	return best, nil
}
