package sched

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

// Two synthetic processors: "gpu" has a large fixed launch cost but a fast
// rate; "cpu" starts immediately but streams slowly. The crossover sits at
// size = fixed / (1/cpuRate - 1/gpuRate).
func gpuTime(size float64) sim.Time { return sim.Microseconds(50) + sim.Seconds(size/20e9) }
func cpuTime(size float64) sim.Time { return sim.Seconds(size / 2e9) }

func trainedScheduler() *ProfileScheduler {
	s := NewProfileScheduler()
	for _, size := range []float64{1e4, 1e6, 1e8} {
		s.Record("gpu", size, gpuTime(size))
		s.Record("cpu", size, cpuTime(size))
	}
	return s
}

func TestExplorationFirst(t *testing.T) {
	s := NewProfileScheduler()
	pick, err := s.Pick([]string{"gpu", "cpu"}, 1e6)
	if err != nil || pick != "gpu" {
		t.Fatalf("first pick = %q, %v", pick, err)
	}
	s.Record("gpu", 1e6, gpuTime(1e6))
	s.Record("gpu", 2e6, gpuTime(2e6))
	// gpu now profiled; cpu still unexplored -> must be tried.
	pick, _ = s.Pick([]string{"gpu", "cpu"}, 1e6)
	if pick != "cpu" {
		t.Fatalf("unexplored candidate skipped: %q", pick)
	}
}

func TestLearnsCrossover(t *testing.T) {
	s := trainedScheduler()
	// Small task: the GPU's launch cost dominates -> CPU wins.
	if pick, _ := s.Pick([]string{"gpu", "cpu"}, 1e4); pick != "cpu" {
		t.Fatalf("small task routed to %q", pick)
	}
	// Large task: rate dominates -> GPU wins.
	if pick, _ := s.Pick([]string{"gpu", "cpu"}, 1e8); pick != "gpu" {
		t.Fatalf("large task routed to %q", pick)
	}
}

func TestPredictionAccuracy(t *testing.T) {
	s := trainedScheduler()
	for _, size := range []float64{5e4, 5e5, 5e7} {
		got, ok := s.Predict("gpu", size)
		if !ok {
			t.Fatal("prediction unavailable after training")
		}
		want := gpuTime(size)
		diff := got - want
		if diff < 0 {
			diff = -diff
		}
		if float64(diff) > 0.05*float64(want)+float64(sim.Microsecond) {
			t.Fatalf("size %g: predicted %v, actual %v", size, got, want)
		}
	}
}

func TestPickMatchesGroundTruth(t *testing.T) {
	// Property: after training, Pick always selects the processor that is
	// actually faster for the queried size.
	s := trainedScheduler()
	f := func(raw uint32) bool {
		size := float64(raw%1_000_000_0) + 1
		pick, err := s.Pick([]string{"gpu", "cpu"}, size)
		if err != nil {
			return false
		}
		truth := "cpu"
		if gpuTime(size) < cpuTime(size) {
			truth = "gpu"
		}
		// Near the crossover, tiny regression error is forgivable; demand
		// correctness only when the gap exceeds 5%.
		g, c := gpuTime(size), cpuTime(size)
		gap := float64(g-c) / float64(c)
		if gap < 0 {
			gap = -gap
		}
		if gap < 0.05 {
			return true
		}
		return pick == truth
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDegenerateSamples(t *testing.T) {
	s := NewProfileScheduler()
	// All samples at one size: prediction falls back to mean rate.
	s.Record("p", 1e6, sim.Milliseconds(2))
	s.Record("p", 1e6, sim.Milliseconds(2))
	got, ok := s.Predict("p", 2e6)
	if !ok {
		t.Fatal("prediction unavailable")
	}
	if got < sim.Milliseconds(3) || got > sim.Milliseconds(5) {
		t.Fatalf("degenerate prediction %v, want ~4ms", got)
	}
}

func TestPickErrors(t *testing.T) {
	s := NewProfileScheduler()
	if _, err := s.Pick(nil, 1); err == nil {
		t.Fatal("empty candidate list accepted")
	}
}

func TestManyProcessors(t *testing.T) {
	s := NewProfileScheduler()
	names := make([]string, 5)
	for i := range names {
		names[i] = fmt.Sprintf("p%d", i)
		rate := float64(i+1) * 1e9
		s.Record(names[i], 1e6, sim.Seconds(1e6/rate))
		s.Record(names[i], 2e6, sim.Seconds(2e6/rate))
	}
	pick, _ := s.Pick(names, 1e7)
	if pick != "p4" {
		t.Fatalf("fastest of five not chosen: %q", pick)
	}
}
