package sched

import (
	"testing"
	"testing/quick"
)

func TestPushPopLIFO(t *testing.T) {
	d := NewDeque[int]("q")
	for i := 0; i < 5; i++ {
		d.PushTail(i)
	}
	for i := 4; i >= 0; i-- {
		v, ok := d.PopTail()
		if !ok || v != i {
			t.Fatalf("PopTail = %d,%v want %d", v, ok, i)
		}
	}
	if _, ok := d.PopTail(); ok {
		t.Fatal("pop from empty deque succeeded")
	}
}

func TestStealFIFO(t *testing.T) {
	d := NewDeque[int]("q")
	for i := 0; i < 5; i++ {
		d.PushTail(i)
	}
	for i := 0; i < 5; i++ {
		v, ok := d.StealHead()
		if !ok || v != i {
			t.Fatalf("StealHead = %d,%v want %d", v, ok, i)
		}
	}
	if _, ok := d.StealHead(); ok {
		t.Fatal("steal from empty deque succeeded")
	}
}

func TestOppositeEnds(t *testing.T) {
	d := NewDeque[int]("q")
	for i := 0; i < 4; i++ {
		d.PushTail(i) // 0 1 2 3
	}
	if v, _ := d.StealHead(); v != 0 {
		t.Fatalf("steal got %d", v)
	}
	if v, _ := d.PopTail(); v != 3 {
		t.Fatalf("pop got %d", v)
	}
	if d.Len() != 2 {
		t.Fatalf("len = %d", d.Len())
	}
	pops, steals := d.Stats()
	if pops != 1 || steals != 1 {
		t.Fatalf("stats = %d,%d", pops, steals)
	}
}

func TestGrowthPreservesOrder(t *testing.T) {
	d := NewDeque[int]("q")
	// Interleave to force wraparound before growth.
	for i := 0; i < 6; i++ {
		d.PushTail(i)
	}
	d.StealHead() // 0
	d.StealHead() // 1
	for i := 6; i < 40; i++ {
		d.PushTail(i)
	}
	for want := 2; want < 40; want++ {
		v, ok := d.StealHead()
		if !ok || v != want {
			t.Fatalf("after growth StealHead = %d,%v want %d", v, ok, want)
		}
	}
}

func TestEveryTaskExactlyOnce(t *testing.T) {
	// Property: any interleaving of owner pops and thief steals delivers
	// each task exactly once.
	f := func(ops []bool, nRaw uint8) bool {
		n := int(nRaw%50) + 1
		d := NewDeque[int]("q")
		for i := 0; i < n; i++ {
			d.PushTail(i)
		}
		seen := make(map[int]int)
		for _, fromTail := range ops {
			var v int
			var ok bool
			if fromTail {
				v, ok = d.PopTail()
			} else {
				v, ok = d.StealHead()
			}
			if ok {
				seen[v]++
			}
		}
		for d.Len() > 0 {
			v, _ := d.PopTail()
			seen[v]++
		}
		if len(seen) != n {
			return false
		}
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInterleavedStealingConservesTasks(t *testing.T) {
	// Property: over several deques, any interleaving of owner pushes,
	// owner pops and cross-queue steals (the engine serializes real
	// schedulers exactly like this) neither loses nor duplicates a task —
	// even across growth and wraparound.
	f := func(script []uint8, nqRaw uint8) bool {
		nq := int(nqRaw%4) + 2 // 2..5 queues
		queues := make([]*Deque[int], nq)
		for i := range queues {
			queues[i] = NewDeque[int]("q")
		}
		next := 0 // every pushed task gets a unique identity
		seen := make(map[int]bool)
		deliver := func(v int) bool {
			if seen[v] {
				return false
			}
			seen[v] = true
			return true
		}
		for _, op := range script {
			q := int(op>>2) % nq
			switch op % 4 {
			case 0, 1: // bias toward pushes so queues stay non-trivial
				queues[q].PushTail(next)
				next++
			case 2:
				if v, ok := queues[q].PopTail(); ok && !deliver(v) {
					return false
				}
			case 3:
				if v, _, ok := StealFrom(queues, q); ok && !deliver(v) {
					return false
				}
			}
		}
		for _, q := range queues {
			for {
				v, ok := q.PopTail()
				if !ok {
					break
				}
				if !deliver(v) {
					return false
				}
			}
		}
		// No duplicates (checked above) and nothing lost: every identity
		// ever pushed was delivered exactly once.
		return len(seen) == next && TotalLen(queues) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionRoundRobin(t *testing.T) {
	items := make([]int, 10)
	for i := range items {
		items[i] = i
	}
	qs := Partition(items, 3, "w")
	if len(qs) != 3 {
		t.Fatalf("%d queues", len(qs))
	}
	wantLens := []int{4, 3, 3}
	for i, q := range qs {
		if q.Len() != wantLens[i] {
			t.Fatalf("queue %d len %d want %d", i, q.Len(), wantLens[i])
		}
	}
	if v, _ := qs[1].StealHead(); v != 1 {
		t.Fatalf("queue 1 head = %d", v)
	}
	if qs[0].Name() != "w0" {
		t.Fatalf("queue name %q", qs[0].Name())
	}
}

func TestStealFromScansOthers(t *testing.T) {
	qs := Partition([]int{10, 20, 30}, 3, "q")
	// Empty own queue 0 via its owner, then steal: should visit queue 1 first.
	qs[0].PopTail()
	v, victim, ok := StealFrom(qs, 0)
	if !ok || v != 20 || victim != 1 {
		t.Fatalf("StealFrom = %d from %d (%v)", v, victim, ok)
	}
	qs[1].PopTail() // drain remaining... queue1 now empty
	v, victim, ok = StealFrom(qs, 0)
	if !ok || v != 30 || victim != 2 {
		t.Fatalf("second StealFrom = %d from %d (%v)", v, victim, ok)
	}
	if _, _, ok = StealFrom(qs, 0); ok {
		t.Fatal("steal from all-empty queues succeeded")
	}
	if TotalLen(qs) != 0 {
		t.Fatalf("TotalLen = %d", TotalLen(qs))
	}
}
