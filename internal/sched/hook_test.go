package sched

import "testing"

// TestHooksFireAfterStateUpdate pins the hook contract the serve engine
// and the metrics layer rely on: OnPush/OnPop/OnSteal observe the deque
// AFTER the operation, so Len() read inside a hook reflects it. Admission
// control publishes depth gauges from these hooks; firing them before the
// update would make every published depth off by one.
func TestHooksFireAfterStateUpdate(t *testing.T) {
	d := NewDeque[int]("hooked")
	var depths []int
	record := func() { depths = append(depths, d.Len()) }
	d.OnPush, d.OnPop, d.OnSteal = record, record, record

	d.PushTail(1)                  // len 1
	d.PushTail(2)                  // len 2
	if _, ok := d.PopTail(); !ok { // len 1
		t.Fatal("pop failed")
	}
	d.PushTail(3)                    // len 2
	if _, ok := d.StealHead(); !ok { // len 1
		t.Fatal("steal failed")
	}
	want := []int{1, 2, 1, 2, 1}
	if len(depths) != len(want) {
		t.Fatalf("hook firings = %v, want %v", depths, want)
	}
	for i := range want {
		if depths[i] != want[i] {
			t.Fatalf("hook %d observed len %d, want %d (full: %v)", i, depths[i], want[i], depths)
		}
	}
}

// TestHooksSkippedOnFailedOps: unsuccessful PopTail/StealHead on an empty
// deque must not fire hooks — a depth gauge must not be re-published for
// a no-op.
func TestHooksSkippedOnFailedOps(t *testing.T) {
	d := NewDeque[int]("empty")
	fired := 0
	d.OnPop = func() { fired++ }
	d.OnSteal = func() { fired++ }
	if _, ok := d.PopTail(); ok {
		t.Fatal("pop on empty succeeded")
	}
	if _, ok := d.StealHead(); ok {
		t.Fatal("steal on empty succeeded")
	}
	if fired != 0 {
		t.Fatalf("hooks fired %d times on failed operations", fired)
	}
}

// TestPeekHeadDoesNotDisturb: PeekHead must return the oldest element
// without removing it, firing hooks, or advancing steal/pop counters —
// it is the admission dispatcher's quota probe.
func TestPeekHeadDoesNotDisturb(t *testing.T) {
	d := NewDeque[string]("peek")
	if _, ok := d.PeekHead(); ok {
		t.Fatal("peek on empty succeeded")
	}
	fired := 0
	d.OnPop = func() { fired++ }
	d.OnSteal = func() { fired++ }
	d.PushTail("first")
	d.PushTail("second")
	v, ok := d.PeekHead()
	if !ok || v != "first" {
		t.Fatalf("peek = %q, %v; want \"first\", true", v, ok)
	}
	if d.Len() != 2 || fired != 0 {
		t.Fatalf("peek disturbed the deque: len %d, hooks %d", d.Len(), fired)
	}
	if pops, steals := d.Stats(); pops != 0 || steals != 0 {
		t.Fatalf("peek moved counters: pops %d steals %d", pops, steals)
	}
	// The element is still stealable afterwards.
	if got, ok := d.StealHead(); !ok || got != "first" {
		t.Fatalf("steal after peek = %q, %v", got, ok)
	}
}
