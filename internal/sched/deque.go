// Package sched provides the task-queue machinery of Northup's runtime:
// per-node work queues that track the progress of recursive tasks (paper
// §III-B, Listing 1) and work-stealing deques used for dynamic load
// balancing between CPU threads and GPU workgroups at a leaf (§V-E).
//
// The paper implements stealing with HSA platform-scope atomics; here the
// discrete-event engine serializes execution, so the deque needs no atomics
// — what is preserved is the scheduling behaviour: owners pop from the tail
// of their own queue while thieves steal from the head of a victim's queue,
// and every task is executed exactly once.
package sched

import "fmt"

// Deque is a double-ended work queue. The owner pushes and pops at the
// tail; thieves steal from the head. It grows automatically.
type Deque[T any] struct {
	name   string
	buf    []T
	head   int // index of the oldest element
	tail   int // index one past the newest element
	n      int
	steals int64
	pops   int64

	// OnPush, OnPop and OnSteal, when set, observe every PushTail and every
	// successful PopTail and StealHead — the hooks tracing and metrics use
	// to timestamp queue activity and maintain live depth gauges. Nil (the
	// default) costs one branch.
	//
	// Contract: each hook fires after the deque's own state is updated, so
	// Len() observed inside a hook reflects the operation. Hooks belong to
	// one deque and one scheduler; when several concurrent schedulers share
	// a node-level aggregate (a depth gauge), each must publish through its
	// own additive slot (core.Runtime.NewQueueDepthSlot) rather than writing
	// an absolute total, or concurrent jobs clobber each other's value.
	OnPush  func()
	OnPop   func()
	OnSteal func()
}

// NewDeque returns an empty deque with the given name (used in stats and
// queue monitors).
func NewDeque[T any](name string) *Deque[T] {
	return &Deque[T]{name: name, buf: make([]T, 8)}
}

// Name returns the deque's name.
func (d *Deque[T]) Name() string { return d.name }

// Len returns the number of queued tasks.
func (d *Deque[T]) Len() int { return d.n }

// Empty reports whether the deque holds no tasks.
func (d *Deque[T]) Empty() bool { return d.n == 0 }

// Snapshot returns the queued tasks oldest-first without removing them.
// Observability callers use it to record what a newly admitted task is
// queued behind (the serve journey layer's causal queue-wait edges).
func (d *Deque[T]) Snapshot() []T {
	if d.n == 0 {
		return nil
	}
	out := make([]T, d.n)
	for i := 0; i < d.n; i++ {
		out[i] = d.buf[(d.head+i)%len(d.buf)]
	}
	return out
}

func (d *Deque[T]) grow() {
	bigger := make([]T, len(d.buf)*2)
	for i := 0; i < d.n; i++ {
		bigger[i] = d.buf[(d.head+i)%len(d.buf)]
	}
	d.buf = bigger
	d.head = 0
	d.tail = d.n
}

// PushTail appends a task at the owner's end.
func (d *Deque[T]) PushTail(t T) {
	if d.n == len(d.buf) {
		d.grow()
	}
	d.buf[d.tail] = t
	d.tail = (d.tail + 1) % len(d.buf)
	d.n++
	if d.OnPush != nil {
		d.OnPush()
	}
}

// PopTail removes the newest task; the owner's fast path.
func (d *Deque[T]) PopTail() (T, bool) {
	var zero T
	if d.n == 0 {
		return zero, false
	}
	d.tail = (d.tail - 1 + len(d.buf)) % len(d.buf)
	t := d.buf[d.tail]
	d.buf[d.tail] = zero
	d.n--
	d.pops++
	if d.OnPop != nil {
		d.OnPop()
	}
	return t, true
}

// PeekHead returns the oldest task without removing it — what an
// admission-control dispatcher needs to test a queue's head against a
// quota before committing to take it.
func (d *Deque[T]) PeekHead() (T, bool) {
	var zero T
	if d.n == 0 {
		return zero, false
	}
	return d.buf[d.head], true
}

// StealHead removes the oldest task; the thief's path.
func (d *Deque[T]) StealHead() (T, bool) {
	var zero T
	if d.n == 0 {
		return zero, false
	}
	t := d.buf[d.head]
	d.buf[d.head] = zero
	d.head = (d.head + 1) % len(d.buf)
	d.n--
	d.steals++
	if d.OnSteal != nil {
		d.OnSteal()
	}
	return t, true
}

// Stats returns how many tasks left through the owner path (pops) and the
// thief path (steals).
func (d *Deque[T]) Stats() (pops, steals int64) { return d.pops, d.steals }

// Monitor is the node-level view of a queue: enough to inspect subtree load
// without knowing the task type, as the paper's load-balancing discussion
// requires ("examining the status of a subsystem... by checking the queue").
type Monitor interface {
	Name() string
	Len() int
}

var _ Monitor = (*Deque[int])(nil)

// StealFrom attempts to steal one task for owner idx from the other queues,
// scanning round-robin starting after idx. It returns the task, the victim
// index, and whether anything was found.
func StealFrom[T any](queues []*Deque[T], idx int) (T, int, bool) {
	var zero T
	n := len(queues)
	for k := 1; k < n; k++ {
		v := (idx + k) % n
		if t, ok := queues[v].StealHead(); ok {
			return t, v, true
		}
	}
	return zero, -1, false
}

// TotalStats sums Stats over the queues: how many tasks left through the
// owner path and the thief path in total.
func TotalStats[T any](queues []*Deque[T]) (pops, steals int64) {
	for _, q := range queues {
		p, s := q.Stats()
		pops += p
		steals += s
	}
	return pops, steals
}

// TotalLen sums the lengths of the queues.
func TotalLen[T any](queues []*Deque[T]) int {
	total := 0
	for _, q := range queues {
		total += q.Len()
	}
	return total
}

// Partition distributes items round-robin over nq new deques, the layout the
// paper uses to assign rows of blocks to queues (§V-E, Figure 10).
func Partition[T any](items []T, nq int, namePrefix string) []*Deque[T] {
	if nq < 1 {
		panic(fmt.Sprintf("sched: Partition into %d queues", nq))
	}
	queues := make([]*Deque[T], nq)
	for i := range queues {
		queues[i] = NewDeque[T](fmt.Sprintf("%s%d", namePrefix, i))
	}
	for i, it := range items {
		queues[i%nq].PushTail(it)
	}
	return queues
}
