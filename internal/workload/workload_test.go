package workload

import (
	"testing"
	"testing/quick"
)

func TestDenseDeterministic(t *testing.T) {
	a := Dense(16, 16, 7)
	b := Dense(16, 16, 7)
	c := Dense(16, 16, 8)
	if len(a) != 256 {
		t.Fatalf("len = %d", len(a))
	}
	same, diff := true, false
	for i := range a {
		same = same && a[i] == b[i]
		diff = diff || a[i] != c[i]
	}
	if !same {
		t.Fatal("same seed gave different matrices")
	}
	if !diff {
		t.Fatal("different seeds gave identical matrices")
	}
	for _, v := range a {
		if v < -1 || v >= 1 {
			t.Fatalf("entry %g out of range", v)
		}
	}
}

func TestHotSpotGridShape(t *testing.T) {
	g := HotSpotGrid(64, 3)
	if g.N != 64 || len(g.Temp) != 64*64 || len(g.Power) != 64*64 {
		t.Fatal("grid shape wrong")
	}
	var totalPower float64
	for _, p := range g.Power {
		if p < 0 {
			t.Fatal("negative power")
		}
		totalPower += float64(p)
	}
	if totalPower <= 0 {
		t.Fatal("power map empty")
	}
	for _, v := range g.Temp {
		if v < 300 || v > 340 {
			t.Fatalf("temperature %g implausible", v)
		}
	}
}

func TestSparseValidAcrossKinds(t *testing.T) {
	for _, kind := range []SparseKind{SparseUniform, SparsePowerLaw, SparseBanded} {
		m := Sparse(kind, 200, 8, 42)
		if err := m.Validate(); err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if m.NNZ() < 200 { // at least one per row
			t.Fatalf("%v: nnz = %d", kind, m.NNZ())
		}
		// Column indices sorted within each row.
		for r := 0; r < m.NRows; r++ {
			for i := int(m.RowPtr[r]) + 1; i < int(m.RowPtr[r+1]); i++ {
				if m.ColIdx[i-1] > m.ColIdx[i] {
					t.Fatalf("%v: row %d columns unsorted", kind, r)
				}
			}
		}
	}
}

func TestSparseKindsDifferInShape(t *testing.T) {
	n, avg := 2000, 10
	uniform := Sparse(SparseUniform, n, avg, 1)
	power := Sparse(SparsePowerLaw, n, avg, 1)
	maxRow := func(m *CSR) int {
		mx := 0
		for r := 0; r < m.NRows; r++ {
			if l := m.RowNNZ(r); l > mx {
				mx = l
			}
		}
		return mx
	}
	if maxRow(power) < 4*maxRow(uniform) {
		t.Fatalf("power-law tail (max %d) not heavier than uniform (max %d)",
			maxRow(power), maxRow(uniform))
	}
}

func TestSparseBandedStructure(t *testing.T) {
	m := Sparse(SparseBanded, 100, 5, 9)
	for r := 0; r < m.NRows; r++ {
		for i := m.RowPtr[r]; i < m.RowPtr[r+1]; i++ {
			d := int(m.ColIdx[i]) - r
			if d < -5 || d > 5 {
				t.Fatalf("row %d has entry at distance %d from diagonal", r, d)
			}
		}
	}
}

func TestSparseDeterministic(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%50) + 2
		a := Sparse(SparsePowerLaw, n, 4, seed)
		b := Sparse(SparsePowerLaw, n, 4, seed)
		if a.NNZ() != b.NNZ() {
			return false
		}
		for i := range a.Val {
			if a.Val[i] != b.Val[i] || a.ColIdx[i] != b.ColIdx[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	m := Sparse(SparseUniform, 20, 4, 5)
	m.ColIdx[0] = 100 // out of range
	if err := m.Validate(); err == nil {
		t.Fatal("bad column accepted")
	}
	m = Sparse(SparseUniform, 20, 4, 5)
	m.RowPtr[3] = m.RowPtr[4] + 1
	if err := m.Validate(); err == nil {
		t.Fatal("decreasing row_ptr accepted")
	}
	m = Sparse(SparseUniform, 20, 4, 5)
	m.RowPtr = m.RowPtr[:10]
	if err := m.Validate(); err == nil {
		t.Fatal("short row_ptr accepted")
	}
}

func TestSparseRowPtrMatchesFullGenerator(t *testing.T) {
	// Phantom-mode planning relies on SparseRowPtr reproducing exactly the
	// row structure of the full generator.
	for _, kind := range []SparseKind{SparseUniform, SparsePowerLaw, SparseBanded} {
		for _, n := range []int{1, 7, 100, 333} {
			m := Sparse(kind, n, 6, 99)
			if err := m.Validate(); err != nil {
				t.Fatalf("%v n=%d: %v", kind, n, err)
			}
			rp := SparseRowPtr(kind, n, 6, 99)
			if len(rp) != len(m.RowPtr) {
				t.Fatalf("%v n=%d: length mismatch", kind, n)
			}
			for i := range rp {
				if rp[i] != m.RowPtr[i] {
					t.Fatalf("%v n=%d: row_ptr[%d] = %d vs %d", kind, n, i, rp[i], m.RowPtr[i])
				}
			}
		}
	}
}

func TestVectorDeterministic(t *testing.T) {
	a, b := Vector(100, 3), Vector(100, 3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("vector not deterministic")
		}
	}
}
