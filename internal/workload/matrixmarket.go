package workload

// Matrix Market I/O: the interchange format of the University of Florida
// sparse matrix collection, the paper's SpMV input source. With this,
// real collection files can drive the SpMV application in place of the
// synthetic generators (spmv.Config.Matrix).

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// ParseMatrixMarket reads a sparse matrix in Matrix Market coordinate
// format ("%%MatrixMarket matrix coordinate real general", plus the
// "pattern" and "symmetric" variants the collection commonly uses) and
// returns it as CSR with rows sorted by column index.
func ParseMatrixMarket(r io.Reader) (*CSR, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)

	// Header.
	if !sc.Scan() {
		return nil, fmt.Errorf("workload: empty MatrixMarket input")
	}
	header := strings.Fields(strings.ToLower(sc.Text()))
	if len(header) < 4 || header[0] != "%%matrixmarket" || header[1] != "matrix" {
		return nil, fmt.Errorf("workload: not a MatrixMarket matrix header: %q", sc.Text())
	}
	if header[2] != "coordinate" {
		return nil, fmt.Errorf("workload: only coordinate format supported (got %q)", header[2])
	}
	pattern := header[3] == "pattern"
	if !pattern && header[3] != "real" && header[3] != "integer" {
		return nil, fmt.Errorf("workload: unsupported field type %q", header[3])
	}
	symmetric := false
	if len(header) >= 5 {
		switch header[4] {
		case "general":
		case "symmetric":
			symmetric = true
		default:
			return nil, fmt.Errorf("workload: unsupported symmetry %q", header[4])
		}
	}

	// Skip comments, read the size line.
	var nRows, nCols, nnz int
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		if _, err := fmt.Sscan(line, &nRows, &nCols, &nnz); err != nil {
			return nil, fmt.Errorf("workload: bad size line %q: %w", line, err)
		}
		break
	}
	if nRows <= 0 || nCols <= 0 || nnz < 0 {
		return nil, fmt.Errorf("workload: bad dimensions %dx%d nnz=%d", nRows, nCols, nnz)
	}

	type entry struct {
		r, c int32
		v    float32
	}
	entries := make([]entry, 0, nnz)
	read := 0
	for read < nnz && sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("workload: bad entry line %q", line)
		}
		ri, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("workload: bad row in %q: %w", line, err)
		}
		ci, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("workload: bad col in %q: %w", line, err)
		}
		if ri < 1 || ri > nRows || ci < 1 || ci > nCols {
			return nil, fmt.Errorf("workload: entry (%d,%d) outside %dx%d", ri, ci, nRows, nCols)
		}
		v := float32(1)
		if !pattern {
			if len(fields) < 3 {
				return nil, fmt.Errorf("workload: missing value in %q", line)
			}
			f, err := strconv.ParseFloat(fields[2], 32)
			if err != nil {
				return nil, fmt.Errorf("workload: bad value in %q: %w", line, err)
			}
			v = float32(f)
		}
		e := entry{int32(ri - 1), int32(ci - 1), v}
		entries = append(entries, e)
		if symmetric && e.r != e.c {
			entries = append(entries, entry{e.c, e.r, e.v})
		}
		read++
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("workload: reading MatrixMarket: %w", err)
	}
	if read < nnz {
		return nil, fmt.Errorf("workload: truncated input: %d of %d entries", read, nnz)
	}

	sort.SliceStable(entries, func(i, j int) bool {
		if entries[i].r != entries[j].r {
			return entries[i].r < entries[j].r
		}
		return entries[i].c < entries[j].c
	})
	m := &CSR{
		NRows:  nRows,
		NCols:  nCols,
		RowPtr: make([]int32, nRows+1),
		ColIdx: make([]int32, len(entries)),
		Val:    make([]float32, len(entries)),
	}
	for i, e := range entries {
		m.ColIdx[i] = e.c
		m.Val[i] = e.v
		m.RowPtr[e.r+1]++
	}
	for r := 0; r < nRows; r++ {
		m.RowPtr[r+1] += m.RowPtr[r]
	}
	return m, m.Validate()
}

// WriteMatrixMarket writes the matrix in coordinate/real/general form.
func WriteMatrixMarket(w io.Writer, m *CSR) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%%%%MatrixMarket matrix coordinate real general\n%d %d %d\n",
		m.NRows, m.NCols, m.NNZ()); err != nil {
		return err
	}
	for r := 0; r < m.NRows; r++ {
		for i := m.RowPtr[r]; i < m.RowPtr[r+1]; i++ {
			if _, err := fmt.Fprintf(bw, "%d %d %g\n", r+1, m.ColIdx[i]+1, m.Val[i]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}
