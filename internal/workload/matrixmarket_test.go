package workload

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseMatrixMarketBasic(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real general
% a comment
3 3 4
1 1 2.0
2 3 -1.5
3 1 4
3 3 0.25
`
	m, err := ParseMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.NRows != 3 || m.NCols != 3 || m.NNZ() != 4 {
		t.Fatalf("shape %dx%d nnz=%d", m.NRows, m.NCols, m.NNZ())
	}
	x := []float32{1, 1, 1}
	// Row sums: 2.0, -1.5, 4.25.
	y := make([]float32, 3)
	for r := 0; r < 3; r++ {
		for i := m.RowPtr[r]; i < m.RowPtr[r+1]; i++ {
			y[r] += m.Val[i] * x[m.ColIdx[i]]
		}
	}
	if y[0] != 2.0 || y[1] != -1.5 || y[2] != 4.25 {
		t.Fatalf("row sums %v", y)
	}
}

func TestParseMatrixMarketSymmetric(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real symmetric
2 2 2
1 1 1.0
2 1 3.0
`
	m, err := ParseMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	// The (2,1) entry mirrors to (1,2): 3 stored non-zeros.
	if m.NNZ() != 3 {
		t.Fatalf("nnz = %d, want 3 (mirrored)", m.NNZ())
	}
	if m.RowNNZ(0) != 2 || m.RowNNZ(1) != 1 {
		t.Fatalf("row lengths %d,%d", m.RowNNZ(0), m.RowNNZ(1))
	}
}

func TestParseMatrixMarketPattern(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate pattern general
2 3 2
1 2
2 3
`
	m, err := ParseMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.NCols != 3 || m.Val[0] != 1 || m.Val[1] != 1 {
		t.Fatalf("pattern values %v", m.Val)
	}
}

func TestParseMatrixMarketErrors(t *testing.T) {
	cases := map[string]string{
		"empty":        "",
		"not mm":       "hello\n1 1 1\n",
		"bad format":   "%%MatrixMarket matrix array real general\n2 2\n",
		"bad field":    "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 1\n",
		"bad symmetry": "%%MatrixMarket matrix coordinate real hermitian\n1 1 1\n1 1 1\n",
		"out of range": "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n",
		"truncated":    "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n",
		"bad value":    "%%MatrixMarket matrix coordinate real general\n1 1 1\n1 1 xyz\n",
	}
	for name, in := range cases {
		if _, err := ParseMatrixMarket(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestMatrixMarketRoundTrip(t *testing.T) {
	f := func(seed int64, kindRaw uint8) bool {
		kind := SparseKind(kindRaw % 3)
		m := Sparse(kind, 40, 5, seed)
		var buf bytes.Buffer
		if err := WriteMatrixMarket(&buf, m); err != nil {
			return false
		}
		got, err := ParseMatrixMarket(&buf)
		if err != nil {
			return false
		}
		if got.NRows != m.NRows || got.NNZ() != m.NNZ() {
			return false
		}
		for i := range m.Val {
			if got.ColIdx[i] != m.ColIdx[i] || got.RowPtr[i%len(m.RowPtr)] != m.RowPtr[i%len(m.RowPtr)] {
				return false
			}
			// Values survive the %g round trip at float32 precision.
			if got.Val[i] != m.Val[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
