// Package workload generates deterministic inputs for the three evaluation
// applications: dense float32 matrices (GEMM), power/temperature grids
// (HotSpot-2D), and sparse matrices in CSR form (CSR-Adaptive SpMV).
//
// The paper's SpMV inputs come from the University of Florida collection;
// that dataset is substituted by synthetic generators spanning the same
// regularity spectrum the CSR-Adaptive algorithm bins for: uniform short
// rows (CSR-Stream territory), power-law rows with a heavy tail
// (CSR-Vector/VectorL territory), and banded matrices (regular HPC stencils).
package workload

import (
	"fmt"
	"math"
	"math/rand"
)

// Dense returns a rows x cols row-major float32 matrix with deterministic
// pseudo-random entries in [-1, 1).
func Dense(rows, cols int, seed int64) []float32 {
	rng := rand.New(rand.NewSource(seed))
	m := make([]float32, rows*cols)
	for i := range m {
		m[i] = float32(rng.Float64()*2 - 1)
	}
	return m
}

// Grid holds a HotSpot-2D problem: an n x n temperature field and the
// corresponding dissipated-power field, both row-major.
type Grid struct {
	N     int
	Temp  []float32
	Power []float32
}

// HotSpotGrid returns an n x n thermal problem: ambient-ish temperatures
// with hot spots, and a power map with a few strong sources, the shape of
// Rodinia's HotSpot inputs.
func HotSpotGrid(n int, seed int64) *Grid {
	rng := rand.New(rand.NewSource(seed))
	g := &Grid{
		N:     n,
		Temp:  make([]float32, n*n),
		Power: make([]float32, n*n),
	}
	for i := range g.Temp {
		g.Temp[i] = 323 + float32(rng.Float64())*10 // ~50C ambient
	}
	// A handful of hot functional units.
	for u := 0; u < 8; u++ {
		cx, cy := rng.Intn(n), rng.Intn(n)
		r := n/16 + 1
		for dy := -r; dy <= r; dy++ {
			for dx := -r; dx <= r; dx++ {
				x, y := cx+dx, cy+dy
				if x < 0 || y < 0 || x >= n || y >= n {
					continue
				}
				d := math.Hypot(float64(dx), float64(dy))
				if d <= float64(r) {
					g.Power[y*n+x] += float32(2e-4 * (1 - d/float64(r+1)))
				}
			}
		}
	}
	return g
}

// CSR is a sparse matrix in compressed-sparse-row format, the three compact
// vectors of §IV-C: row_ptr, col_id and data.
type CSR struct {
	NRows, NCols int
	RowPtr       []int32 // length NRows+1
	ColIdx       []int32 // length NNZ
	Val          []float32
}

// NNZ returns the number of stored non-zeros.
func (m *CSR) NNZ() int { return len(m.Val) }

// RowNNZ returns the number of non-zeros in row r.
func (m *CSR) RowNNZ(r int) int { return int(m.RowPtr[r+1] - m.RowPtr[r]) }

// Validate checks CSR structural invariants.
func (m *CSR) Validate() error {
	if len(m.RowPtr) != m.NRows+1 {
		return fmt.Errorf("workload: row_ptr length %d for %d rows", len(m.RowPtr), m.NRows)
	}
	if m.RowPtr[0] != 0 {
		return fmt.Errorf("workload: row_ptr[0] = %d", m.RowPtr[0])
	}
	if int(m.RowPtr[m.NRows]) != len(m.Val) || len(m.ColIdx) != len(m.Val) {
		return fmt.Errorf("workload: nnz mismatch: row_ptr end %d, col %d, val %d",
			m.RowPtr[m.NRows], len(m.ColIdx), len(m.Val))
	}
	for r := 0; r < m.NRows; r++ {
		if m.RowPtr[r+1] < m.RowPtr[r] {
			return fmt.Errorf("workload: row_ptr decreases at row %d", r)
		}
	}
	for i, c := range m.ColIdx {
		if c < 0 || int(c) >= m.NCols {
			return fmt.Errorf("workload: col_id[%d] = %d outside %d columns", i, c, m.NCols)
		}
	}
	return nil
}

// SparseKind selects a sparse-matrix structure.
type SparseKind int

const (
	// SparseUniform gives every row about the same short length: the
	// regular matrices CSR-Stream handles best.
	SparseUniform SparseKind = iota
	// SparsePowerLaw gives Zipf-distributed row lengths with a heavy tail:
	// the irregular matrices that need CSR-Vector and CSR-VectorL.
	SparsePowerLaw
	// SparseBanded concentrates non-zeros near the diagonal, like
	// discretized PDE operators.
	SparseBanded
)

// String names the kind.
func (k SparseKind) String() string {
	switch k {
	case SparseUniform:
		return "uniform"
	case SparsePowerLaw:
		return "powerlaw"
	case SparseBanded:
		return "banded"
	default:
		return fmt.Sprintf("sparse(%d)", int(k))
	}
}

// SparseRowPtr generates only the row_ptr vector of Sparse(kind, n, avgNNZ,
// seed): the row-length structure without materializing columns and values.
// The out-of-core planner (nnz-adaptive shard splitting, §IV-C) needs
// exactly this much even in phantom (timing-only) runs, where a 16M-row
// matrix's values never exist on the host.
func SparseRowPtr(kind SparseKind, n, avgNNZ int, seed int64) []int32 {
	rng := rand.New(rand.NewSource(seed))
	rowPtr := make([]int32, n+1)
	for r := 0; r < n; r++ {
		rowPtr[r+1] = rowPtr[r] + int32(rowLength(kind, rng, n, avgNNZ, r))
	}
	return rowPtr
}

// rowLength draws one row's non-zero count.
func rowLength(kind SparseKind, rng *rand.Rand, n, avgNNZ, row int) int {
	var rowLen int
	switch kind {
	case SparseUniform:
		rowLen = avgNNZ/2 + rng.Intn(avgNNZ+1)
	case SparsePowerLaw:
		// Zipf-ish via inverse transform; mean scaled to avgNNZ.
		u := rng.Float64()
		rowLen = int(float64(avgNNZ) / 3 * math.Pow(u, -0.55))
		if rowLen > n {
			rowLen = n
		}
	case SparseBanded:
		rowLen = avgNNZ
	}
	if rowLen < 1 {
		rowLen = 1
	}
	if kind == SparseBanded {
		// Banded rows clip at the matrix edges; mirror the fill loop below.
		half := rowLen / 2
		lo := row - half
		count := 0
		for c := lo; count < rowLen && c < n; c++ {
			if c >= 0 {
				count++
			}
		}
		return count
	}
	if rowLen > n {
		rowLen = n
	}
	return rowLen
}

// Sparse generates an n x n CSR matrix with roughly avgNNZ non-zeros per
// row, structured per kind, deterministically from seed. Its row_ptr is
// bit-identical to SparseRowPtr(kind, n, avgNNZ, seed).
func Sparse(kind SparseKind, n, avgNNZ int, seed int64) *CSR {
	m := &CSR{NRows: n, NCols: n,
		RowPtr: SparseRowPtr(kind, n, avgNNZ, seed)}
	nnz := int(m.RowPtr[n])
	m.ColIdx = make([]int32, 0, nnz)
	m.Val = make([]float32, 0, nnz)
	// Columns and values come from an independent stream so that the row
	// structure alone can be regenerated cheaply.
	rng := rand.New(rand.NewSource(seed ^ 0x5eed5eed))
	cols := make([]int32, 0, avgNNZ)
	for r := 0; r < n; r++ {
		rowLen := int(m.RowPtr[r+1] - m.RowPtr[r])
		cols = cols[:0]
		switch kind {
		case SparseBanded:
			// Use the pre-clip band half-width so edge rows enumerate the
			// same columns the row-length generator counted.
			base := avgNNZ
			if base < 1 {
				base = 1
			}
			half := base / 2
			for c := r - half; len(cols) < rowLen; c++ {
				if c >= 0 && c < n {
					cols = append(cols, int32(c))
				}
				if c >= n {
					break
				}
			}
		default:
			seen := make(map[int32]bool, rowLen)
			for len(cols) < rowLen && len(cols) < n {
				c := int32(rng.Intn(n))
				if !seen[c] {
					seen[c] = true
					cols = append(cols, c)
				}
			}
			sortInt32(cols)
		}
		for _, c := range cols {
			m.ColIdx = append(m.ColIdx, c)
			m.Val = append(m.Val, float32(rng.Float64()*2-1))
		}
	}
	return m
}

// Vector returns a deterministic dense vector of length n.
func Vector(n int, seed int64) []float32 {
	rng := rand.New(rand.NewSource(seed))
	v := make([]float32, n)
	for i := range v {
		v[i] = float32(rng.Float64()*2 - 1)
	}
	return v
}

// sortInt32 is insertion sort: rows are short and mostly sorted already.
func sortInt32(a []int32) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j-1] > a[j]; j-- {
			a[j-1], a[j] = a[j], a[j-1]
		}
	}
}
