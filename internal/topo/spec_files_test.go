package topo

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/sim"
)

// TestShippedSpecsBuild loads every topology spec shipped in specs/ and
// verifies it builds into a valid tree.
func TestShippedSpecsBuild(t *testing.T) {
	pattern := filepath.Join("..", "..", "specs", "*.json")
	files, err := filepath.Glob(pattern)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 4 {
		t.Fatalf("expected shipped specs at %s, found %d", pattern, len(files))
	}
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		spec, err := ParseSpec(data)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		tree, err := BuildSpec(sim.NewEngine(), spec)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if err := tree.Validate(); err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if tree.DOT() == "" || tree.String() == "" {
			t.Fatalf("%s: renderings empty", f)
		}
	}
}

// TestAsymmetricSpecShape pins the asymmetric example's structure: two
// subtrees of different depths, Figure 2 style.
func TestAsymmetricSpecShape(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("..", "..", "specs", "asymmetric.json"))
	if err != nil {
		t.Fatal(err)
	}
	spec, err := ParseSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := BuildSpec(sim.NewEngine(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if tree.MaxLevel() != 2 {
		t.Fatalf("max level = %d", tree.MaxLevel())
	}
	if len(tree.Root().Children) != 2 {
		t.Fatalf("root has %d children", len(tree.Root().Children))
	}
	leaves := tree.Leaves()
	if len(leaves) != 2 {
		t.Fatalf("%d leaves", len(leaves))
	}
	if leaves[0].Level == leaves[1].Level {
		t.Fatal("asymmetric example has symmetric leaf depths")
	}
}
