package topo

import (
	"fmt"

	"repro/internal/device"
	"repro/internal/proc"
	"repro/internal/sim"
	"repro/internal/storage"
)

// Builder constructs a Tree incrementally. Nodes are numbered in BFS order
// when Build is called, matching the paper's Figure 2 numbering (node 3's
// children are 6 and 7).
type Builder struct {
	engine *sim.Engine
	root   *bnode
	all    []*bnode
}

type bnode struct {
	prof     device.Profile
	parent   *bnode
	children []*bnode
	procs    []proc.Processor
	built    *Node
}

// NodeRef identifies a node under construction.
type NodeRef struct{ b *bnode }

// NewBuilder returns a Builder whose devices will be bound to e.
func NewBuilder(e *sim.Engine) *Builder { return &Builder{engine: e} }

// Engine returns the engine the builder binds devices to.
func (b *Builder) Engine() *sim.Engine { return b.engine }

// Root sets the level-0 storage node. It may be called once.
func (b *Builder) Root(p device.Profile) NodeRef {
	if b.root != nil {
		panic("topo: Root called twice")
	}
	n := &bnode{prof: p}
	b.root = n
	b.all = append(b.all, n)
	return NodeRef{n}
}

// Child adds a memory node one level below parent.
func (b *Builder) Child(parent NodeRef, p device.Profile) NodeRef {
	n := &bnode{prof: p, parent: parent.b}
	parent.b.children = append(parent.b.children, n)
	b.all = append(b.all, n)
	return NodeRef{n}
}

// Attach adds a processor to a node. Leaves need at least one; the paper
// also allows a CPU on a non-leaf node (the CPU-plus-discrete-GPU case).
func (b *Builder) Attach(ref NodeRef, procs ...proc.Processor) {
	ref.b.procs = append(ref.b.procs, procs...)
}

// Build assigns BFS IDs, creates the devices and file stores, validates the
// result, and returns the finished tree.
func (b *Builder) Build() (*Tree, error) {
	if b.root == nil {
		return nil, fmt.Errorf("topo: no root node")
	}
	t := &Tree{}
	queue := []*bnode{b.root}
	level := map[*bnode]int{b.root: 0}
	for len(queue) > 0 {
		bn := queue[0]
		queue = queue[1:]
		dev := device.New(b.engine, bn.prof)
		n := &Node{
			ID:    len(t.nodes),
			Level: level[bn],
			Mem:   dev,
			Procs: bn.procs,
		}
		if dev.Kind().IsFileStore() {
			n.Store = storage.NewStore(dev)
		}
		bn.built = n
		t.nodes = append(t.nodes, n)
		if n.Level > t.maxLevel {
			t.maxLevel = n.Level
		}
		for _, c := range bn.children {
			level[c] = level[bn] + 1
			queue = append(queue, c)
		}
	}
	// Wire parent/child pointers now that all nodes exist.
	for _, bn := range b.all {
		n := bn.built
		if bn.parent != nil {
			n.Parent = bn.parent.built
		}
		for _, c := range bn.children {
			n.Children = append(n.Children, c.built)
		}
	}
	t.root = b.root.built
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// MustBuild is Build, panicking on error; for tests and fixed topologies.
func (b *Builder) MustBuild() *Tree {
	t, err := b.Build()
	if err != nil {
		panic(err)
	}
	return t
}
