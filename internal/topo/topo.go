// Package topo implements Northup's topological tree: the asymmetric,
// hierarchical abstraction of a heterogeneous machine (paper §III-B,
// Figure 2, Listing 1).
//
// Inner nodes (including the root) are memories or storages; leaves are the
// transition points from software- to hardware-managed memory, each with one
// or more attached processors. Levels are numbered the paper's way: the
// slowest storage (the root) is level 0, faster memories get larger numbers.
//
// The tree is pure structure plus queries — policies such as chunk sizing,
// pipelining and stealing live in the runtime (package core), mirroring the
// paper's decoupling of data management from computation.
package topo

import (
	"fmt"
	"strings"

	"repro/internal/device"
	"repro/internal/proc"
	"repro/internal/sched"
	"repro/internal/storage"
)

// Node is one vertex of the Northup tree: a memory/storage device, plus —
// for leaves — the processors computation launches on. It carries the same
// information as the paper's Listing 1 struct: identity, level, parent and
// children links, memory info, processor info, and work-queue links.
type Node struct {
	ID    int
	Level int

	Mem   *device.Device
	Store *storage.Store // non-nil when Mem is file-backed

	Parent   *Node
	Children []*Node

	Procs []proc.Processor

	// Queues are the node's work queues (Listing 1: work_queue[numQueues]),
	// registered by the runtime so subtree load can be inspected.
	Queues []sched.Monitor
}

// IsLeaf reports whether the node has no children.
func (n *Node) IsLeaf() bool { return len(n.Children) == 0 }

// AttachQueues registers work-queue monitors on the node for the lifetime
// of one scheduler and returns a detach function that removes exactly those
// monitors again. Schedulers must use this instead of assigning Queues
// directly: several jobs multiplexed over one shared tree (package serve)
// each attach their own queues, and a direct assignment would clobber a
// concurrent job's registration and leak stale monitors after the job ends.
func (n *Node) AttachQueues(qs ...sched.Monitor) (detach func()) {
	n.Queues = append(n.Queues, qs...)
	return func() {
		kept := n.Queues[:0]
		for _, q := range n.Queues {
			mine := false
			for _, a := range qs {
				if q == a {
					mine = true
					break
				}
			}
			if !mine {
				kept = append(kept, q)
			}
		}
		for i := len(kept); i < len(n.Queues); i++ {
			n.Queues[i] = nil
		}
		n.Queues = kept
	}
}

// Kind returns the node's device kind (the paper's fetch_node_type()).
func (n *Node) Kind() device.Kind { return n.Mem.Kind() }

// Child returns the i'th child, following the paper's
// get_children_list()[i] idiom.
func (n *Node) Child(i int) *Node { return n.Children[i] }

// Processor returns the first attached processor of the given kind, or nil.
func (n *Node) Processor(k proc.Kind) proc.Processor {
	for _, p := range n.Procs {
		if p.ProcKind() == k {
			return p
		}
	}
	return nil
}

// String formats the node compactly, e.g. "node3(dram,L1)".
func (n *Node) String() string {
	return fmt.Sprintf("node%d(%s,L%d)", n.ID, n.Mem.Kind(), n.Level)
}

// Tree is a validated Northup topology.
type Tree struct {
	root     *Node
	nodes    []*Node // indexed by ID (BFS order)
	maxLevel int
}

// Root returns the level-0 node (the slowest storage).
func (t *Tree) Root() *Node { return t.root }

// MaxLevel returns the largest level number (the paper's
// get_max_treelevel(); leaves of the deepest branch live here).
func (t *Tree) MaxLevel() int { return t.maxLevel }

// Levels returns the number of levels, i.e. MaxLevel()+1.
func (t *Tree) Levels() int { return t.maxLevel + 1 }

// NumNodes returns the number of nodes.
func (t *Tree) NumNodes() int { return len(t.nodes) }

// Node returns the node with the given ID.
func (t *Tree) Node(id int) *Node {
	if id < 0 || id >= len(t.nodes) {
		panic(fmt.Sprintf("topo: no node %d", id))
	}
	return t.nodes[id]
}

// Nodes returns all nodes in BFS (ID) order.
func (t *Tree) Nodes() []*Node { return t.nodes }

// Leaves returns the leaf nodes in ID order.
func (t *Tree) Leaves() []*Node {
	var ls []*Node
	for _, n := range t.nodes {
		if n.IsLeaf() {
			ls = append(ls, n)
		}
	}
	return ls
}

// FirstOfKind returns the lowest-ID node whose memory is of the given
// device kind, or nil if the tree has none. Handy for pointing tools at
// "the DRAM node" or "the GPU memory" without hard-coding BFS IDs.
func (t *Tree) FirstOfKind(k device.Kind) *Node {
	for _, n := range t.nodes {
		if n.Kind() == k {
			return n
		}
	}
	return nil
}

// AtLevel returns the nodes at the given level, in ID order.
func (t *Tree) AtLevel(level int) []*Node {
	var ns []*Node
	for _, n := range t.nodes {
		if n.Level == level {
			ns = append(ns, n)
		}
	}
	return ns
}

// PathDown returns the chain of nodes from the root to n, inclusive.
func (t *Tree) PathDown(n *Node) []*Node {
	var rev []*Node
	for cur := n; cur != nil; cur = cur.Parent {
		rev = append(rev, cur)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// Validate checks the structural invariants: exactly one root at level 0,
// child levels are parent+1, IDs match positions, every leaf has at least
// one processor, and parent/child links are mutual.
func (t *Tree) Validate() error {
	if t.root == nil {
		return fmt.Errorf("topo: no root")
	}
	if t.root.Level != 0 || t.root.Parent != nil {
		return fmt.Errorf("topo: root must be level 0 with no parent")
	}
	for i, n := range t.nodes {
		if n.ID != i {
			return fmt.Errorf("topo: node at index %d has ID %d", i, n.ID)
		}
		if n.Mem == nil {
			return fmt.Errorf("topo: %v has no memory device", n)
		}
		if n != t.root {
			if n.Parent == nil {
				return fmt.Errorf("topo: %v has no parent", n)
			}
			if n.Level != n.Parent.Level+1 {
				return fmt.Errorf("topo: %v level %d, parent level %d",
					n, n.Level, n.Parent.Level)
			}
			found := false
			for _, c := range n.Parent.Children {
				if c == n {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("topo: %v missing from parent's children", n)
			}
		}
		if n.IsLeaf() && len(n.Procs) == 0 {
			return fmt.Errorf("topo: leaf %v has no processor", n)
		}
	}
	return nil
}

// String renders the tree as an indented outline, the runtime's "output the
// topology" facility (§III-E).
func (t *Tree) String() string {
	var sb strings.Builder
	var walk func(n *Node, depth int)
	walk = func(n *Node, depth int) {
		fmt.Fprintf(&sb, "%s%v cap=%s", strings.Repeat("  ", depth), n,
			fmtBytes(n.Mem.Capacity()))
		for _, p := range n.Procs {
			fmt.Fprintf(&sb, " +%s(%s)", p.ProcName(), p.ProcKind())
		}
		sb.WriteByte('\n')
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	walk(t.root, 0)
	return sb.String()
}

// SubtreeLoad sums the queued tasks of every work queue in the subtree
// rooted at n — §V-E's introspection: "examining the status of a subsystem
// can be easily accomplished by checking the queue that [is] associated
// with the root of a subtree."
func (t *Tree) SubtreeLoad(n *Node) int {
	total := 0
	for _, q := range n.Queues {
		total += q.Len()
	}
	for _, c := range n.Children {
		total += t.SubtreeLoad(c)
	}
	return total
}

// QueueReport renders the per-node work-queue state as an indented
// outline: the runtime's load-observation facility.
func (t *Tree) QueueReport() string {
	var sb strings.Builder
	var walk func(n *Node, depth int)
	walk = func(n *Node, depth int) {
		fmt.Fprintf(&sb, "%s%v subtree-load=%d", strings.Repeat("  ", depth),
			n, t.SubtreeLoad(n))
		for _, q := range n.Queues {
			fmt.Fprintf(&sb, " %s=%d", q.Name(), q.Len())
			// Deques also carry lifetime pop/steal counters; surface them
			// so the report shows how tasks left, not just what is queued.
			if st, ok := q.(interface{ Stats() (int64, int64) }); ok {
				pops, steals := st.Stats()
				if pops+steals > 0 {
					fmt.Fprintf(&sb, "(pops=%d,steals=%d)", pops, steals)
				}
			}
		}
		sb.WriteByte('\n')
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	walk(t.root, 0)
	return sb.String()
}

// DOT renders the tree in Graphviz dot format: circles for memory nodes and
// boxes for processors, matching the paper's Figure 2 styling.
func (t *Tree) DOT() string {
	var sb strings.Builder
	sb.WriteString("digraph northup {\n  rankdir=TB;\n")
	for _, n := range t.nodes {
		fmt.Fprintf(&sb, "  n%d [shape=circle,label=\"%d\\n%s L%d\"];\n",
			n.ID, n.ID, n.Mem.Kind(), n.Level)
		for j, p := range n.Procs {
			fmt.Fprintf(&sb, "  p%d_%d [shape=box,label=\"%s\"];\n", n.ID, j, p.ProcName())
			fmt.Fprintf(&sb, "  n%d -> p%d_%d [style=dashed];\n", n.ID, n.ID, j)
		}
	}
	for _, n := range t.nodes {
		for _, c := range n.Children {
			fmt.Fprintf(&sb, "  n%d -> n%d;\n", n.ID, c.ID)
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

func fmtBytes(n int64) string {
	switch {
	case n >= device.GiB && n%device.GiB == 0:
		return fmt.Sprintf("%dGiB", n/device.GiB)
	case n >= device.MiB && n%device.MiB == 0:
		return fmt.Sprintf("%dMiB", n/device.MiB)
	case n >= device.KiB && n%device.KiB == 0:
		return fmt.Sprintf("%dKiB", n/device.KiB)
	default:
		return fmt.Sprintf("%dB", n)
	}
}
