package topo

import (
	"encoding/json"
	"fmt"

	"repro/internal/device"
	"repro/internal/gpu"
	"repro/internal/proc"
	"repro/internal/sim"
)

// Spec is a declarative topology description, loadable from JSON. It gives
// the reproduction the paper's "maintained by system software or constructed
// by the runtime library at program initialization" path (§III-B): the same
// application binary runs on any topology a spec describes.
type Spec struct {
	// Name labels the topology in tool output.
	Name string `json:"name"`
	// Nodes lists the tree nodes. Exactly one must have no parent.
	Nodes []NodeSpec `json:"nodes"`
}

// NodeSpec describes one tree node.
type NodeSpec struct {
	// Name is a unique identifier referenced by Parent fields.
	Name string `json:"name"`
	// Parent names the parent node; empty for the root.
	Parent string `json:"parent,omitempty"`
	// Device selects a device profile: "hdd", "ssd", "nvm", "dram", "hbm",
	// or "gpumem".
	Device string `json:"device"`
	// CapacityMiB is the device capacity.
	CapacityMiB int64 `json:"capacity_mib"`
	// ReadMBps/WriteMBps override bandwidth for "ssd" (the §V-D sweep).
	ReadMBps  float64 `json:"read_mbps,omitempty"`
	WriteMBps float64 `json:"write_mbps,omitempty"`
	// Procs lists processors to attach: "apu-gpu", "discrete-gpu", "cpu",
	// "pim" (in-memory compute sized to this node's bandwidth), or
	// "fpga" (a reconfigurable leaf accelerator).
	Procs []string `json:"procs,omitempty"`
}

// ParseSpec decodes a JSON topology spec.
func ParseSpec(data []byte) (*Spec, error) {
	var s Spec
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("topo: parsing spec: %w", err)
	}
	if len(s.Nodes) == 0 {
		return nil, fmt.Errorf("topo: spec %q has no nodes", s.Name)
	}
	return &s, nil
}

// profileFor maps a spec device name to a device profile.
func profileFor(n NodeSpec) (device.Profile, error) {
	capacity := n.CapacityMiB * device.MiB
	if capacity <= 0 {
		return device.Profile{}, fmt.Errorf("topo: node %q: capacity %d MiB invalid", n.Name, n.CapacityMiB)
	}
	switch n.Device {
	case "hdd":
		return device.HDDProfile(capacity), nil
	case "ssd":
		r, w := n.ReadMBps, n.WriteMBps
		if r == 0 {
			r = 1400
		}
		if w == 0 {
			w = 600
		}
		return device.SSDProfile(capacity, r, w), nil
	case "nvm":
		return device.NVMProfile(capacity), nil
	case "dram":
		return device.DRAMProfile(capacity), nil
	case "hbm":
		return device.HBMProfile(capacity), nil
	case "gpumem":
		return device.GPUMemProfile(capacity), nil
	default:
		return device.Profile{}, fmt.Errorf("topo: node %q: unknown device %q", n.Name, n.Device)
	}
}

// BuildSpec instantiates a spec on the engine.
func BuildSpec(e *sim.Engine, s *Spec) (*Tree, error) {
	byName := make(map[string]NodeSpec, len(s.Nodes))
	children := make(map[string][]string)
	rootName := ""
	for _, n := range s.Nodes {
		if n.Name == "" {
			return nil, fmt.Errorf("topo: spec %q: unnamed node", s.Name)
		}
		if _, dup := byName[n.Name]; dup {
			return nil, fmt.Errorf("topo: spec %q: duplicate node %q", s.Name, n.Name)
		}
		byName[n.Name] = n
		if n.Parent == "" {
			if rootName != "" {
				return nil, fmt.Errorf("topo: spec %q: multiple roots (%q, %q)", s.Name, rootName, n.Name)
			}
			rootName = n.Name
		} else {
			children[n.Parent] = append(children[n.Parent], n.Name)
		}
	}
	if rootName == "" {
		return nil, fmt.Errorf("topo: spec %q: no root node", s.Name)
	}
	for parent := range children {
		if _, ok := byName[parent]; !ok {
			return nil, fmt.Errorf("topo: spec %q: parent %q does not exist", s.Name, parent)
		}
	}

	b := NewBuilder(e)
	var addNode func(name string, parent NodeRef, isRoot bool) error
	addNode = func(name string, parent NodeRef, isRoot bool) error {
		ns := byName[name]
		prof, err := profileFor(ns)
		if err != nil {
			return err
		}
		var ref NodeRef
		if isRoot {
			ref = b.Root(prof)
		} else {
			ref = b.Child(parent, prof)
		}
		for _, pname := range ns.Procs {
			switch pname {
			case "apu-gpu":
				b.Attach(ref, gpu.APUGPU(e))
			case "discrete-gpu":
				b.Attach(ref, gpu.DiscreteGPU(e))
			case "cpu":
				b.Attach(ref, gpu.APUCPU(e))
			case "pim":
				// In-memory compute: units see the host node's bandwidth.
				b.Attach(ref, proc.NewPIM(e, name+"-pim", 8, 4e9, prof.ReadBW))
			case "fpga":
				b.Attach(ref, proc.NewFPGA(name+"-fpga", 250e6, 8, prof.ReadBW,
					sim.Milliseconds(40)))
			default:
				return fmt.Errorf("topo: node %q: unknown processor %q", name, pname)
			}
		}
		for _, c := range children[name] {
			if err := addNode(c, ref, false); err != nil {
				return err
			}
		}
		return nil
	}
	if err := addNode(rootName, NodeRef{}, true); err != nil {
		return nil, err
	}
	return b.Build()
}
