package topo

import (
	"strings"
	"testing"

	"repro/internal/device"
	"repro/internal/gpu"
	"repro/internal/proc"
	"repro/internal/sched"
	"repro/internal/sim"
)

// buildFig2 builds an asymmetric tree shaped like the paper's Figure 2:
// a root with two subtrees of different depths.
func buildFig2(t *testing.T) *Tree {
	t.Helper()
	e := sim.NewEngine()
	b := NewBuilder(e)
	root := b.Root(device.HDDProfile(4 * device.GiB)) // node 0, L0
	left := b.Child(root, device.DRAMProfile(device.GiB))
	right := b.Child(root, device.NVMProfile(2*device.GiB))
	ll := b.Child(left, device.GPUMemProfile(device.GiB))
	b.Attach(ll, gpu.DiscreteGPU(e))
	rl := b.Child(right, device.DRAMProfile(device.GiB))
	rr := b.Child(right, device.HBMProfile(device.GiB))
	b.Attach(rl, gpu.APUGPU(e), gpu.APUCPU(e))
	b.Attach(rr, gpu.APUGPU(e))
	tree, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func TestBFSNumberingAndLevels(t *testing.T) {
	tree := buildFig2(t)
	if tree.NumNodes() != 6 {
		t.Fatalf("nodes = %d", tree.NumNodes())
	}
	wantLevels := []int{0, 1, 1, 2, 2, 2}
	for i, want := range wantLevels {
		if got := tree.Node(i).Level; got != want {
			t.Errorf("node %d level = %d, want %d", i, got, want)
		}
	}
	if tree.MaxLevel() != 2 || tree.Levels() != 3 {
		t.Fatalf("max level %d", tree.MaxLevel())
	}
	// BFS: the right inner node (ID 2) has children 4 and 5, like the
	// paper's node-3-has-children-6-and-7 numbering discipline.
	right := tree.Node(2)
	if len(right.Children) != 2 || right.Child(0).ID != 4 || right.Child(1).ID != 5 {
		t.Fatalf("right children = %v", right.Children)
	}
}

func TestQueries(t *testing.T) {
	tree := buildFig2(t)
	root := tree.Root()
	if root.Kind() != device.KindHDD {
		t.Fatalf("root kind %v", root.Kind())
	}
	if !root.Kind().IsFileStore() || root.Store == nil {
		t.Fatal("HDD root did not get a file store")
	}
	leaf := tree.Node(4)
	if !leaf.IsLeaf() {
		t.Fatal("node 4 should be a leaf")
	}
	if leaf.Parent.ID != 2 {
		t.Fatalf("node 4 parent = %d", leaf.Parent.ID)
	}
	if p := leaf.Processor(proc.GPU); p == nil || p.ProcKind() != proc.GPU {
		t.Fatal("GPU lookup failed")
	}
	if p := leaf.Processor(proc.CPU); p == nil {
		t.Fatal("CPU lookup failed")
	}
	if p := leaf.Processor(proc.FPGA); p != nil {
		t.Fatal("phantom FPGA found")
	}
	leaves := tree.Leaves()
	if len(leaves) != 3 {
		t.Fatalf("%d leaves", len(leaves))
	}
	at2 := tree.AtLevel(2)
	if len(at2) != 3 {
		t.Fatalf("%d nodes at level 2", len(at2))
	}
	path := tree.PathDown(tree.Node(5))
	if len(path) != 3 || path[0].ID != 0 || path[1].ID != 2 || path[2].ID != 5 {
		t.Fatalf("path = %v", path)
	}
}

func TestValidationCatchesBareLeaf(t *testing.T) {
	e := sim.NewEngine()
	b := NewBuilder(e)
	root := b.Root(device.SSDProfile(device.GiB, 1400, 600))
	b.Child(root, device.DRAMProfile(device.GiB)) // leaf without processor
	if _, err := b.Build(); err == nil {
		t.Fatal("leaf without processor passed validation")
	}
}

func TestBuilderRejectsNoRoot(t *testing.T) {
	e := sim.NewEngine()
	b := NewBuilder(e)
	if _, err := b.Build(); err == nil {
		t.Fatal("empty builder built")
	}
}

func TestDoubleRootPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e := sim.NewEngine()
	b := NewBuilder(e)
	b.Root(device.SSDProfile(device.GiB, 1400, 600))
	b.Root(device.SSDProfile(device.GiB, 1400, 600))
}

func TestStringAndDOT(t *testing.T) {
	tree := buildFig2(t)
	s := tree.String()
	if !strings.Contains(s, "node0(hdd,L0)") || !strings.Contains(s, "hbm") {
		t.Fatalf("String output missing pieces:\n%s", s)
	}
	dot := tree.DOT()
	for _, frag := range []string{"digraph northup", "n0 -> n1", "n2 -> n4", "shape=box", "w9100"} {
		if !strings.Contains(dot, frag) {
			t.Fatalf("DOT missing %q:\n%s", frag, dot)
		}
	}
}

func TestStandardTopologies(t *testing.T) {
	e := sim.NewEngine()
	apu := APU(e, APUConfig{Storage: SSD, StorageMiB: 512, DRAMMiB: 64})
	if apu.Levels() != 2 {
		t.Fatalf("APU levels = %d", apu.Levels())
	}
	if apu.Root().Kind() != device.KindSSD {
		t.Fatalf("APU root kind %v", apu.Root().Kind())
	}
	leaf := apu.Node(1)
	if leaf.Processor(proc.GPU) == nil {
		t.Fatal("APU leaf lacks GPU")
	}
	if leaf.Processor(proc.CPU) != nil {
		t.Fatal("APU leaf has CPU without WithCPU")
	}

	apuCPU := APU(e, APUConfig{Storage: HDD, StorageMiB: 512, DRAMMiB: 64, WithCPU: true})
	if apuCPU.Root().Kind() != device.KindHDD {
		t.Fatal("HDD choice ignored")
	}
	if apuCPU.Node(1).Processor(proc.CPU) == nil {
		t.Fatal("WithCPU leaf lacks CPU")
	}

	d := Discrete(e2(), DiscreteConfig{Storage: SSD, StorageMiB: 512, DRAMMiB: 128, GPUMemMiB: 64})
	if d.Levels() != 3 {
		t.Fatalf("discrete levels = %d", d.Levels())
	}
	if d.Node(1).Processor(proc.CPU) == nil {
		t.Fatal("discrete DRAM node lacks the CPU (the paper's non-leaf exception)")
	}
	if d.Node(2).Processor(proc.GPU) == nil {
		t.Fatal("discrete leaf lacks GPU")
	}

	im := InMemory(e2(), 1024)
	if im.Levels() != 1 || im.Root().Processor(proc.GPU) == nil {
		t.Fatal("in-memory topology malformed")
	}
}

func e2() *sim.Engine { return sim.NewEngine() }

func TestSpecRoundTrip(t *testing.T) {
	specJSON := `{
	  "name": "apu-ssd",
	  "nodes": [
	    {"name": "ssd", "device": "ssd", "capacity_mib": 512, "read_mbps": 2000, "write_mbps": 1200},
	    {"name": "dram", "parent": "ssd", "device": "dram", "capacity_mib": 64, "procs": ["apu-gpu", "cpu"]}
	  ]
	}`
	s, err := ParseSpec([]byte(specJSON))
	if err != nil {
		t.Fatal(err)
	}
	tree, err := BuildSpec(sim.NewEngine(), s)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Levels() != 2 {
		t.Fatalf("levels = %d", tree.Levels())
	}
	if bw := tree.Root().Mem.Profile().ReadBW; bw != 2000*device.MBps {
		t.Fatalf("root read BW = %g", bw)
	}
	if tree.Node(1).Processor(proc.CPU) == nil {
		t.Fatal("spec CPU not attached")
	}
}

func TestSpecErrors(t *testing.T) {
	cases := []struct {
		name string
		json string
	}{
		{"empty", `{"name":"x","nodes":[]}`},
		{"two roots", `{"nodes":[{"name":"a","device":"dram","capacity_mib":1},{"name":"b","device":"dram","capacity_mib":1}]}`},
		{"bad device", `{"nodes":[{"name":"a","device":"floppy","capacity_mib":1}]}`},
		{"bad proc", `{"nodes":[{"name":"a","device":"dram","capacity_mib":1,"procs":["tpu"]}]}`},
		{"dangling parent", `{"nodes":[{"name":"a","device":"dram","capacity_mib":1,"procs":["cpu"]},{"name":"b","parent":"zz","device":"dram","capacity_mib":1}]}`},
		{"duplicate", `{"nodes":[{"name":"a","device":"dram","capacity_mib":1},{"name":"a","parent":"a","device":"dram","capacity_mib":1}]}`},
		{"zero capacity", `{"nodes":[{"name":"a","device":"dram","capacity_mib":0,"procs":["cpu"]}]}`},
	}
	for _, c := range cases {
		s, err := ParseSpec([]byte(c.json))
		if err != nil {
			continue // parse-level rejection is fine too
		}
		if _, err := BuildSpec(sim.NewEngine(), s); err == nil {
			t.Errorf("%s: invalid spec accepted", c.name)
		}
	}
}

func TestQueueReportAndSubtreeLoad(t *testing.T) {
	tree := buildFig2(t)
	q1 := sched.NewDeque[int]("chunks")
	q2 := sched.NewDeque[int]("tiles")
	for i := 0; i < 5; i++ {
		q1.PushTail(i)
	}
	for i := 0; i < 3; i++ {
		q2.PushTail(i)
	}
	tree.Node(2).Queues = []sched.Monitor{q1}
	tree.Node(4).Queues = []sched.Monitor{q2}
	if got := tree.SubtreeLoad(tree.Node(2)); got != 8 {
		t.Fatalf("subtree load = %d, want 8", got)
	}
	if got := tree.SubtreeLoad(tree.Root()); got != 8 {
		t.Fatalf("root load = %d, want 8", got)
	}
	if got := tree.SubtreeLoad(tree.Node(1)); got != 0 {
		t.Fatalf("left subtree load = %d, want 0", got)
	}
	rep := tree.QueueReport()
	for _, frag := range []string{"chunks=5", "tiles=3", "subtree-load=8"} {
		if !strings.Contains(rep, frag) {
			t.Fatalf("report missing %q:\n%s", frag, rep)
		}
	}
}

func TestSpecPIMAndFPGA(t *testing.T) {
	specJSON := `{
	  "nodes": [
	    {"name": "ssd", "device": "ssd", "capacity_mib": 128},
	    {"name": "nvm", "parent": "ssd", "device": "nvm", "capacity_mib": 64, "procs": ["pim"]},
	    {"name": "dram", "parent": "nvm", "device": "dram", "capacity_mib": 16, "procs": ["fpga", "cpu"]}
	  ]
	}`
	s, err := ParseSpec([]byte(specJSON))
	if err != nil {
		t.Fatal(err)
	}
	tree, err := BuildSpec(sim.NewEngine(), s)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Node(1).Processor(proc.PIM) == nil {
		t.Fatal("PIM not attached from spec")
	}
	if tree.Node(2).Processor(proc.FPGA) == nil {
		t.Fatal("FPGA not attached from spec")
	}
}
