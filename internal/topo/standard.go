package topo

import (
	"repro/internal/device"
	"repro/internal/gpu"
	"repro/internal/sim"
)

// This file provides the three topologies of the paper's evaluation (§V-A)
// as ready-made constructors. The scale parameter divides capacities so that
// scaled-down workloads face the same capacity pressure (and therefore the
// same chunking decisions) as the paper's full-size runs.

// StorageChoice selects the root storage of an out-of-core topology.
type StorageChoice int

const (
	// SSD is the paper's HyperX Predator-class PCIe SSD (1400/600 MB/s).
	SSD StorageChoice = iota
	// HDD is the paper's WD5000AAKX-class SATA drive.
	HDD
)

// APUConfig parameterizes the 2-level out-of-core topology.
type APUConfig struct {
	Storage StorageChoice
	// StorageMiB and DRAMMiB size the two levels. The paper uses a 2 GiB
	// DRAM staging buffer; scaled-down runs shrink both proportionally.
	StorageMiB int64
	DRAMMiB    int64
	// SSDReadMBps/SSDWriteMBps override SSD bandwidth for the §V-D sweep
	// (zero means the 1400/600 baseline).
	SSDReadMBps  float64
	SSDWriteMBps float64
	// WithCPU also attaches the CPU to the leaf (the §V-E APU case, where
	// CPU and GPU share virtual memory and steal work from each other).
	WithCPU bool
}

// APU builds the paper's 2-level tree: file storage (root, level 0) ->
// DRAM staging buffer (leaf, level 1) with the integrated GPU attached —
// and optionally the CPU, for the load-balancing study.
func APU(e *sim.Engine, cfg APUConfig) *Tree {
	b := NewBuilder(e)
	var rootProf device.Profile
	if cfg.Storage == HDD {
		rootProf = device.HDDProfile(cfg.StorageMiB * device.MiB)
	} else {
		r, w := cfg.SSDReadMBps, cfg.SSDWriteMBps
		if r == 0 {
			r = 1400
		}
		if w == 0 {
			w = 600
		}
		rootProf = device.SSDProfile(cfg.StorageMiB*device.MiB, r, w)
	}
	root := b.Root(rootProf)
	dram := b.Child(root, device.DRAMProfile(cfg.DRAMMiB*device.MiB))
	b.Attach(dram, gpu.APUGPU(e))
	if cfg.WithCPU {
		b.Attach(dram, gpu.APUCPU(e))
	}
	return b.MustBuild()
}

// DiscreteConfig parameterizes the 3-level discrete-GPU topology.
type DiscreteConfig struct {
	Storage    StorageChoice
	StorageMiB int64
	DRAMMiB    int64
	GPUMemMiB  int64
}

// Discrete builds the paper's 3-level tree (§V-C, Figure 8): file storage
// (level 0) -> DRAM (level 1) -> GPU device memory (level 2) with the
// discrete W9100-class GPU at the leaf. The host CPU attaches to the DRAM
// node — the paper's noted exception where a processor sits on a non-leaf.
func Discrete(e *sim.Engine, cfg DiscreteConfig) *Tree {
	b := NewBuilder(e)
	var rootProf device.Profile
	if cfg.Storage == HDD {
		rootProf = device.HDDProfile(cfg.StorageMiB * device.MiB)
	} else {
		rootProf = device.SSDProfile(cfg.StorageMiB*device.MiB, 1400, 600)
	}
	root := b.Root(rootProf)
	dram := b.Child(root, device.DRAMProfile(cfg.DRAMMiB*device.MiB))
	b.Attach(dram, gpu.APUCPU(e)) // CPU on the non-leaf DRAM node
	gmem := b.Child(dram, device.GPUMemProfile(cfg.GPUMemMiB*device.MiB))
	b.Attach(gmem, gpu.DiscreteGPU(e))
	return b.MustBuild()
}

// NVMConfig parameterizes the NVM-augmented topology of §VI ("a future
// Exascale compute node may use die-stacked memory as a small capacity,
// fast memory while using NVM as large capacity, slow memory").
type NVMConfig struct {
	Storage    StorageChoice
	StorageMiB int64
	NVMMiB     int64
	DRAMMiB    int64
	WithCPU    bool
}

// APUWithNVM builds the deeper per-node hierarchy the paper's discussion
// proposes: file storage (level 0) -> byte-addressable NVM (level 1) ->
// DRAM (level 2, leaf) with the integrated GPU. Applications written
// against the tree run unchanged; the NVM level absorbs storage re-reads.
func APUWithNVM(e *sim.Engine, cfg NVMConfig) *Tree {
	b := NewBuilder(e)
	var rootProf device.Profile
	if cfg.Storage == HDD {
		rootProf = device.HDDProfile(cfg.StorageMiB * device.MiB)
	} else {
		rootProf = device.SSDProfile(cfg.StorageMiB*device.MiB, 1400, 600)
	}
	root := b.Root(rootProf)
	nvm := b.Child(root, device.NVMProfile(cfg.NVMMiB*device.MiB))
	dram := b.Child(nvm, device.DRAMProfile(cfg.DRAMMiB*device.MiB))
	b.Attach(dram, gpu.APUGPU(e))
	if cfg.WithCPU {
		b.Attach(dram, gpu.APUCPU(e))
	}
	return b.MustBuild()
}

// MultiBranchConfig parameterizes the asymmetric multi-branch topology of
// Figure 2: one storage root with several staging subtrees.
type MultiBranchConfig struct {
	Storage    StorageChoice
	StorageMiB int64
	// BranchDRAMMiB sizes each branch's staging memory (one entry per
	// branch).
	BranchDRAMMiB []int64
	// FastBranches marks which branches carry the discrete-class GPU; the
	// rest get the slower integrated GPU, making the tree heterogeneous.
	FastBranches []bool
}

// MultiBranch builds an asymmetric tree: the root storage with one staging
// child per entry in BranchDRAMMiB, each with its own GPU.
func MultiBranch(e *sim.Engine, cfg MultiBranchConfig) *Tree {
	b := NewBuilder(e)
	var rootProf device.Profile
	if cfg.Storage == HDD {
		rootProf = device.HDDProfile(cfg.StorageMiB * device.MiB)
	} else {
		rootProf = device.SSDProfile(cfg.StorageMiB*device.MiB, 1400, 600)
	}
	root := b.Root(rootProf)
	for i, dramMiB := range cfg.BranchDRAMMiB {
		branch := b.Child(root, device.DRAMProfile(dramMiB*device.MiB))
		if i < len(cfg.FastBranches) && cfg.FastBranches[i] {
			b.Attach(branch, gpu.DiscreteGPU(e))
		} else {
			b.Attach(branch, gpu.APUGPU(e))
		}
	}
	return b.MustBuild()
}

// InMemory builds the in-memory baseline "tree": a single DRAM node holding
// the whole working set (the paper's 16 GiB configuration) with the GPU and
// CPU attached. Out-of-core Northup runs are normalized against it.
func InMemory(e *sim.Engine, dramMiB int64) *Tree {
	b := NewBuilder(e)
	root := b.Root(device.DRAMProfile(dramMiB * device.MiB))
	b.Attach(root, gpu.APUGPU(e), gpu.APUCPU(e))
	return b.MustBuild()
}
