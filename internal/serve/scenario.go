// Package serve is the multi-tenant traffic engine of the Northup
// reproduction: it admits *streams* of jobs from several tenants against a
// *shared* topology tree, where the original paper (and PRs 1–5) executed
// one job at a time on a private tree.
//
// A scenario — declared in a small YAML/JSON DSL (parse.go, yaml.go) —
// names the tenants, their workload mixes (GEMM / SpMV / HotSpot / sort at
// varying sizes), open-loop Poisson arrival rates driven by seeded
// deterministic RNGs, per-tenant staging-memory quotas, and latency SLOs.
// The engine (engine.go) layers admission control and weighted-fair
// queueing over the existing internal/sched deques, runs each admitted job
// as a root task on the shared core.Runtime (Runtime.Start — the same
// mechanism the cluster package uses to multiplex one engine), and reports
// per-tenant latency percentiles from internal/obs fixed-bucket histograms
// (report.go).
//
// Everything is deterministic: arrivals come from per-tenant math/rand
// sources seeded from the scenario seed, the simulation engine serializes
// all activity, and metric exports are byte-stable — the same scenario and
// seed reproduce byte-identical per-tenant metrics JSON, which the
// determinism property tests assert.
package serve

import (
	"fmt"

	"repro/internal/apps/gemm"
	"repro/internal/apps/hotspot"
	"repro/internal/device"
	"repro/internal/journey"
	"repro/internal/sim"
)

// Workload kinds a mix entry may name.
const (
	WorkloadGEMM    = "gemm"
	WorkloadSpMV    = "spmv"
	WorkloadHotSpot = "hotspot"
	WorkloadSort    = "sort"
)

// spmvAvgNNZ is the fixed average row population of serve SpMV jobs (the
// paper's uniform synthetic structure).
const spmvAvgNNZ = 8

// Alert-rule metric selectors. Each is a windowed per-tenant value the ops
// plane can evaluate against a rule threshold.
const (
	// MetricSLOBurn is the error-budget burn rate: the windowed fraction
	// of completions that violated the tenant SLO, divided by the tenant's
	// error budget (1 - slo_target). Burn 1.0 means "spending budget at
	// exactly the sustainable rate"; 14.4 is the classic fast-burn page.
	MetricSLOBurn = "slo_burn"
	// MetricRejectRatio is windowed rejections / arrivals.
	MetricRejectRatio = "reject_ratio"
	// MetricErrorRatio is windowed job errors / (errors + completions).
	MetricErrorRatio = "error_ratio"
	// MetricP99 is the windowed p99 latency in virtual nanoseconds; rule
	// thresholds for it accept duration syntax ("20ms").
	MetricP99 = "p99_latency_ns"
	// MetricQueueDepth is the windowed max of the tenant's queue depth.
	MetricQueueDepth = "queue_depth"
)

// DefaultSLOTarget is the SLO attainment objective assumed when a tenant
// declares an SLO without a target: 99% of completions inside the SLO.
const DefaultSLOTarget = 0.99

// maxMixN bounds problem sizes so footprint arithmetic stays far from
// overflow and a typo'd dimension fails at parse time, not at runtime.
const maxMixN = 1 << 20

// MixEntry is one workload in a tenant's mix, drawn with probability
// proportional to Weight.
type MixEntry struct {
	// Workload is one of gemm, spmv, hotspot, sort.
	Workload string
	// N is the problem dimension: matrix/grid side for gemm and hotspot,
	// row count for spmv, key count for sort.
	N int
	// Iters is the stencil iteration count (hotspot only; default 4).
	Iters int
	// Weight is the entry's draw weight within the mix (default 1).
	Weight float64
}

// Tenant declares one traffic source.
type Tenant struct {
	Name string
	// Rate is the open-loop Poisson arrival rate in jobs per second
	// (the DSL's "rate: 10/s").
	Rate float64
	// Weight is the tenant's weighted-fair-queueing share (default 1).
	Weight float64
	// QuotaMiB caps the tenant's staging-memory footprint: a job whose
	// working set cannot fit the quota is rejected at admission, and
	// dispatch holds a job back while the tenant's in-flight footprint
	// plus the job's would exceed it.
	QuotaMiB int64
	// SLO is the per-job latency objective; completions above it count
	// into northup_serve_slo_violations_total. Zero disables the check.
	SLO sim.Time
	// SLOTarget is the attainment objective the error budget derives from:
	// burn rate 1.0 means violations arrive at exactly (1 - SLOTarget) of
	// completions. Defaults to DefaultSLOTarget; must lie in (0, 1).
	SLOTarget float64
	// MaxJobs stops the tenant's arrival stream after this many arrivals
	// (0 = until the scenario duration elapses).
	MaxJobs int
	// MaxQueue caps the admission backlog; arrivals beyond it are
	// rejected with reason "backlog" (default 64).
	MaxQueue int
	Mix      []MixEntry
}

// QuotaBytes returns the tenant's staging quota in bytes.
func (t *Tenant) QuotaBytes() int64 { return t.QuotaMiB * device.MiB }

// TopoSpec selects and sizes the shared topology tree.
type TopoSpec struct {
	// Preset is "apu-ssd" (default) or "apu-hdd": the paper's 2-level
	// storage -> DRAM(+GPU,+CPU) tree.
	Preset string
	// StorageMiB sizes the root storage (default 1024).
	StorageMiB int64
	// DRAMMiB sizes the staging DRAM the quotas carve up (default 256).
	DRAMMiB int64
}

// OpsSpec configures the live operations plane. The zero value disables
// it unless the scenario declares alert rules, in which case defaults
// apply.
type OpsSpec struct {
	// Window is the default rolling-window width for the northup_window_*
	// series (default 10s of virtual time).
	Window sim.Time
	// Step is the evaluation period: windows refresh and rules evaluate at
	// every multiple of Step (default 1s of virtual time).
	Step sim.Time
	// TopK bounds the attribution report attached to firing alerts
	// (default 3).
	TopK int
	// TraceEvents sizes the trace ring attribution reads from (default
	// trace.DefaultMaxEvents). Attribution needs tracing; the engine turns
	// the recorder on whenever the scenario has alert rules.
	TraceEvents int
	// Enabled forces the plane on even without alert rules, so a scenario
	// can collect window series alone.
	Enabled bool
}

// JourneySpec configures the per-job journey layer (internal/journey):
// trace IDs, phase waterfalls, latency-histogram exemplars, and the
// tail-latency analyzer's input. Journeys are observation only — enabling
// them never changes the job schedule — but they do add outputs (exemplar
// annotations, reject-reason counters/instants), so they default off to
// keep existing scenarios' artifacts byte-identical.
type JourneySpec struct {
	// Enabled turns the journey layer on.
	Enabled bool
	// Sample is the fraction of admitted jobs that record a journey,
	// applied as a deterministic per-tenant stride (no RNG draws, so the
	// schedule is untouched). Defaults to 1.0 when enabled; must lie in
	// (0, 1].
	Sample float64
	// MaxSegments caps each job's waterfall segment list (default 512).
	// Phase totals stay exact past the cap.
	MaxSegments int
}

// AlertRule is one declarative burn-rate alert in the DSL: fire when the
// selected metric exceeds the threshold over both the fast and the slow
// trailing window (multiwindow burn-rate alerting).
type AlertRule struct {
	// Name identifies the rule; names must be unique per scenario.
	Name string
	// Tenant scopes the rule to one tenant; empty instantiates the rule
	// for every tenant.
	Tenant string
	// Metric is one of the Metric* selectors.
	Metric string
	// Threshold is the firing level. For MetricP99 the DSL also accepts
	// duration syntax, parsed into nanoseconds.
	Threshold float64
	// FastWindow and SlowWindow are the two trailing windows; the rule
	// fires only when both exceed the threshold. SlowWindow defaults to
	// FastWindow (single-window rule) and must not be shorter.
	FastWindow, SlowWindow sim.Time
	// Severity is page (default), ticket or warn.
	Severity string
}

// Scenario is a parsed, validated traffic scenario.
type Scenario struct {
	Name string
	// Seed seeds every per-tenant arrival RNG (tenant seeds are derived
	// from it and the tenant name, so tenant order does not matter).
	Seed int64
	// Duration is the arrival horizon: no tenant generates arrivals past
	// it. Jobs admitted before the horizon run to completion.
	Duration sim.Time
	// Workers is the number of dispatch slots — how many admitted jobs
	// the shared tree executes concurrently (default 2).
	Workers  int
	Topology TopoSpec
	Tenants  []Tenant
	// Ops configures the live operations plane (windowed series, alert
	// evaluation cadence, attribution depth).
	Ops OpsSpec
	// Alerts are the scenario's burn-rate alert rules. A non-empty list
	// enables the ops plane and the trace recorder behind it.
	Alerts []AlertRule
	// Journeys configures the per-job journey layer (trace IDs, phase
	// waterfalls, exemplars, tail analysis).
	Journeys JourneySpec
}

// OpsEnabled reports whether this scenario runs the live operations plane.
func (s *Scenario) OpsEnabled() bool {
	return s.Ops.Enabled || len(s.Alerts) > 0
}

// JourneysEnabled reports whether this scenario records per-job journeys.
func (s *Scenario) JourneysEnabled() bool { return s.Journeys.Enabled }

// applyDefaults fills zero-valued optional fields in place.
func (s *Scenario) applyDefaults() {
	if s.Workers == 0 {
		s.Workers = 2
	}
	if s.Topology.Preset == "" {
		s.Topology.Preset = "apu-ssd"
	}
	if s.Topology.StorageMiB == 0 {
		s.Topology.StorageMiB = 1024
	}
	if s.Topology.DRAMMiB == 0 {
		s.Topology.DRAMMiB = 256
	}
	if s.OpsEnabled() {
		if s.Ops.Step == 0 {
			s.Ops.Step = sim.Second
		}
		if s.Ops.Window == 0 {
			s.Ops.Window = 10 * sim.Second
		}
		if s.Ops.TopK == 0 {
			s.Ops.TopK = 3
		}
	}
	if s.Journeys.Enabled {
		if s.Journeys.Sample == 0 {
			s.Journeys.Sample = 1.0
		}
		if s.Journeys.MaxSegments == 0 {
			s.Journeys.MaxSegments = journey.DefaultMaxSegments
		}
	}
	for i := range s.Alerts {
		r := &s.Alerts[i]
		if r.Severity == "" {
			r.Severity = "page"
		}
		if r.SlowWindow == 0 {
			r.SlowWindow = r.FastWindow
		}
	}
	for i := range s.Tenants {
		t := &s.Tenants[i]
		if t.Weight == 0 {
			t.Weight = 1
		}
		if t.MaxQueue == 0 {
			t.MaxQueue = 64
		}
		if t.SLOTarget == 0 {
			t.SLOTarget = DefaultSLOTarget
		}
		for j := range t.Mix {
			m := &t.Mix[j]
			if m.Weight == 0 {
				m.Weight = 1
			}
			if m.Workload == WorkloadHotSpot && m.Iters == 0 {
				m.Iters = 4
			}
		}
	}
}

// withDefaults returns a deep copy with defaults applied, leaving the
// receiver untouched so callers can reuse it across engines.
func (s *Scenario) withDefaults() *Scenario {
	out := *s
	out.Alerts = append([]AlertRule(nil), s.Alerts...)
	out.Tenants = make([]Tenant, len(s.Tenants))
	copy(out.Tenants, s.Tenants)
	for i := range out.Tenants {
		mix := make([]MixEntry, len(out.Tenants[i].Mix))
		copy(mix, out.Tenants[i].Mix)
		out.Tenants[i].Mix = mix
	}
	out.applyDefaults()
	return &out
}

// Validate checks the scenario's semantic invariants. New applies defaults
// and calls it; programmatic builders need not call either themselves.
func (s *Scenario) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("serve: scenario has no name")
	}
	if s.Workers < 1 {
		return fmt.Errorf("serve: workers %d < 1", s.Workers)
	}
	switch s.Topology.Preset {
	case "apu-ssd", "apu-hdd":
	default:
		return fmt.Errorf("serve: unknown topology preset %q (want apu-ssd or apu-hdd)", s.Topology.Preset)
	}
	if s.Topology.StorageMiB <= 0 || s.Topology.DRAMMiB <= 0 {
		return fmt.Errorf("serve: topology capacities must be positive (storage %d MiB, dram %d MiB)",
			s.Topology.StorageMiB, s.Topology.DRAMMiB)
	}
	if len(s.Tenants) == 0 {
		return fmt.Errorf("serve: scenario %q has no tenants", s.Name)
	}
	seen := map[string]bool{}
	for i := range s.Tenants {
		t := &s.Tenants[i]
		if t.Name == "" {
			return fmt.Errorf("serve: tenant %d has no name", i)
		}
		if seen[t.Name] {
			return fmt.Errorf("serve: duplicate tenant %q", t.Name)
		}
		seen[t.Name] = true
		if t.Rate <= 0 {
			return fmt.Errorf("serve: tenant %q rate %g must be positive", t.Name, t.Rate)
		}
		if t.Weight <= 0 {
			return fmt.Errorf("serve: tenant %q weight %g must be positive", t.Name, t.Weight)
		}
		if t.QuotaMiB <= 0 {
			return fmt.Errorf("serve: tenant %q quota %d MiB must be positive", t.Name, t.QuotaMiB)
		}
		if t.SLO < 0 {
			return fmt.Errorf("serve: tenant %q negative SLO", t.Name)
		}
		if t.SLOTarget <= 0 || t.SLOTarget >= 1 {
			return fmt.Errorf("serve: tenant %q slo_target %g must lie in (0, 1)", t.Name, t.SLOTarget)
		}
		if t.MaxJobs < 0 || t.MaxQueue < 1 {
			return fmt.Errorf("serve: tenant %q invalid max_jobs/max_queue", t.Name)
		}
		if s.Duration <= 0 && t.MaxJobs == 0 {
			return fmt.Errorf("serve: tenant %q has no max_jobs and the scenario has no duration: arrivals would never stop", t.Name)
		}
		if len(t.Mix) == 0 {
			return fmt.Errorf("serve: tenant %q has an empty mix", t.Name)
		}
		for j := range t.Mix {
			if err := validateMix(&t.Mix[j]); err != nil {
				return fmt.Errorf("serve: tenant %q mix[%d]: %w", t.Name, j, err)
			}
		}
	}
	if s.Ops.Window < 0 || s.Ops.Step < 0 || s.Ops.TopK < 0 || s.Ops.TraceEvents < 0 {
		return fmt.Errorf("serve: ops fields must be non-negative")
	}
	if s.OpsEnabled() && s.Ops.Step > 0 && s.Ops.Window > 0 && s.Ops.Window < s.Ops.Step {
		return fmt.Errorf("serve: ops window %v shorter than step %v", s.Ops.Window, s.Ops.Step)
	}
	if s.Journeys.Enabled {
		if s.Journeys.Sample <= 0 || s.Journeys.Sample > 1 {
			return fmt.Errorf("serve: journeys sample %g must lie in (0, 1]", s.Journeys.Sample)
		}
		if s.Journeys.MaxSegments < 0 {
			return fmt.Errorf("serve: journeys max_segments must be non-negative")
		}
	}
	ruleSeen := map[string]bool{}
	for i := range s.Alerts {
		r := &s.Alerts[i]
		if err := validateAlert(r, seen); err != nil {
			return fmt.Errorf("serve: alert[%d]: %w", i, err)
		}
		if ruleSeen[r.Name] {
			return fmt.Errorf("serve: duplicate alert rule %q", r.Name)
		}
		ruleSeen[r.Name] = true
	}
	return nil
}

// validateAlert checks one alert rule; tenants is the set of declared
// tenant names.
func validateAlert(r *AlertRule, tenants map[string]bool) error {
	if r.Name == "" {
		return fmt.Errorf("rule has no name")
	}
	if r.Tenant != "" && !tenants[r.Tenant] {
		return fmt.Errorf("rule %q names unknown tenant %q", r.Name, r.Tenant)
	}
	switch r.Metric {
	case MetricSLOBurn, MetricRejectRatio, MetricErrorRatio, MetricP99, MetricQueueDepth:
	default:
		return fmt.Errorf("rule %q has unknown metric %q (want %s, %s, %s, %s or %s)",
			r.Name, r.Metric, MetricSLOBurn, MetricRejectRatio, MetricErrorRatio, MetricP99, MetricQueueDepth)
	}
	if r.Threshold < 0 {
		return fmt.Errorf("rule %q threshold %g must be non-negative", r.Name, r.Threshold)
	}
	if r.FastWindow <= 0 {
		return fmt.Errorf("rule %q fast window must be positive", r.Name)
	}
	if r.SlowWindow < r.FastWindow {
		return fmt.Errorf("rule %q slow window %v shorter than fast window %v",
			r.Name, r.SlowWindow, r.FastWindow)
	}
	switch r.Severity {
	case "page", "ticket", "warn":
	default:
		return fmt.Errorf("rule %q has unknown severity %q (want page, ticket or warn)", r.Name, r.Severity)
	}
	return nil
}

// validateMix checks one mix entry against its workload's shape rules.
func validateMix(m *MixEntry) error {
	if m.Weight <= 0 {
		return fmt.Errorf("weight %g must be positive", m.Weight)
	}
	if m.N <= 0 {
		return fmt.Errorf("n %d must be positive", m.N)
	}
	if m.N > maxMixN {
		return fmt.Errorf("n %d exceeds the serve size ceiling %d", m.N, maxMixN)
	}
	switch m.Workload {
	case WorkloadGEMM:
		if m.N%gemm.TileDim != 0 {
			return fmt.Errorf("gemm n %d must be a multiple of %d", m.N, gemm.TileDim)
		}
	case WorkloadHotSpot:
		if m.N%hotspot.BlockDim != 0 {
			return fmt.Errorf("hotspot n %d must be a multiple of %d", m.N, hotspot.BlockDim)
		}
		if m.Iters <= 0 {
			return fmt.Errorf("hotspot iters %d must be positive", m.Iters)
		}
	case WorkloadSpMV, WorkloadSort:
		// Any positive size; chunking handles remainders.
	default:
		return fmt.Errorf("unknown workload %q (want gemm, spmv, hotspot or sort)", m.Workload)
	}
	return nil
}
