package serve

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"

	"repro/internal/apps/gemm"
	"repro/internal/apps/hotspot"
	"repro/internal/apps/oocsort"
	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/journey"
	"repro/internal/sim"
	"repro/internal/view"
	"repro/internal/workload"
)

// job is one admitted unit of tenant traffic.
type job struct {
	tenant string
	id     int
	mix    MixEntry
	seed   int64 // input-data seed, drawn from the tenant's arrival RNG
	arrive sim.Time
	plan   jobPlan
	// jny is the job's journey, nil when journeys are off or the job was
	// not sampled. journey.Job methods are nil-safe where bodies call them.
	jny *journey.Job
}

// Admission reject reasons: the label set of
// northup_admission_reject_total and the suffix of the reject trace
// instants (journeys.go).
const (
	// rejectQuota: the job's resident working set alone exceeds the
	// tenant quota — no chunking can save it.
	rejectQuota = "quota"
	// rejectMinStrip: the resident set fits but not together with even the
	// minimum strip the workload can chunk down to.
	rejectMinStrip = "min_strip"
	// rejectBacklog: the tenant's admission queue is full.
	rejectBacklog = "backlog"
)

// jobPlan is the admission-time sizing of a job against its tenant's quota.
type jobPlan struct {
	// Footprint is the job's peak staging-memory demand in bytes: what the
	// quota admits and what dispatch holds as in-flight while it runs.
	Footprint int64
	// WorkBytes is the job's weighted-fair-queueing cost — the bytes it
	// stages through the memory hierarchy.
	WorkBytes int64
	// Strip is the workload-specific chunking (rows or keys per piece)
	// that achieves the footprint.
	Strip int
}

// name builds a per-job-unique simulated file name: CreateInput requires
// distinct names, and several jobs share one storage node.
func (jb *job) name(part string) string {
	return fmt.Sprintf("%s-j%04d-%s", jb.tenant, jb.id, part)
}

// planJob sizes a mix entry's working set against a tenant quota. The
// divide-and-conquer chunking adapts to the quota exactly like the paper's
// runtime adapts to a level's capacity — a smaller quota means thinner
// strips, not failure — until even the minimum strip no longer fits, at
// which point the job is rejected. On rejection the returned reason
// distinguishes a resident set that can never fit (rejectQuota) from a
// minimum strip that does not fit beside it (rejectMinStrip).
func planJob(m MixEntry, quota int64) (jobPlan, string, error) {
	n64 := int64(m.N)
	switch m.Workload {
	case WorkloadGEMM:
		// B stays resident; A and C stream through in row strips.
		resident := 4 * n64 * n64
		stripCost := 2 * 4 * n64 // bytes per strip row (one A row + one C row)
		s := chunkRows(quota-resident, stripCost, m.N, gemm.TileDim)
		if s < gemm.TileDim {
			reason := rejectMinStrip
			if resident > quota {
				reason = rejectQuota
			}
			return jobPlan{}, reason, fmt.Errorf("gemm n=%d needs %d B for its minimum working set", m.N,
				resident+int64(gemm.TileDim)*stripCost)
		}
		return jobPlan{
			Footprint: resident + int64(s)*stripCost,
			WorkBytes: 3 * 4 * n64 * n64,
			Strip:     s,
		}, "", nil
	case WorkloadSpMV:
		// x and y stay resident; CSR row chunks stream through. Sizing uses
		// the uniform expectation avgNNZ per row, which the serve generator
		// also produces.
		resident := 2 * 4 * n64
		rowCost := int64(spmvAvgNNZ) * 8 // 4 B column index + 4 B value
		c := chunkRows(quota-resident, rowCost, m.N, 1)
		if c < 1 {
			reason := rejectMinStrip
			if resident > quota {
				reason = rejectQuota
			}
			return jobPlan{}, reason, fmt.Errorf("spmv n=%d needs %d B for its minimum working set", m.N,
				resident+rowCost)
		}
		return jobPlan{
			Footprint: resident + int64(c)*rowCost,
			WorkBytes: resident + n64*rowCost,
			Strip:     c,
		}, "", nil
	case WorkloadHotSpot:
		// Double-buffered temperature band plus its power band.
		bandCost := 3 * 4 * n64 // bytes per band row (temp in, temp out, power)
		c := chunkRows(quota, bandCost, m.N, hotspot.BlockDim)
		if c < hotspot.BlockDim {
			return jobPlan{}, rejectMinStrip, fmt.Errorf("hotspot n=%d needs %d B for its minimum working set", m.N,
				int64(hotspot.BlockDim)*bandCost)
		}
		return jobPlan{
			Footprint: int64(c) * bandCost,
			WorkBytes: int64(m.Iters)*2*4*n64*n64 + 4*n64*n64,
			Strip:     c,
		}, "", nil
	case WorkloadSort:
		// One in-place run at a time (the sorted-runs pass of the paper's
		// out-of-core sort).
		c := chunkRows(quota, 4, m.N, 1)
		if c < 1 {
			return jobPlan{}, rejectMinStrip, fmt.Errorf("sort n=%d needs at least 4 B of quota", m.N)
		}
		return jobPlan{
			Footprint: int64(c) * 4,
			WorkBytes: 2 * 4 * n64,
			Strip:     c,
		}, "", nil
	default:
		return jobPlan{}, rejectQuota, fmt.Errorf("unknown workload %q", m.Workload)
	}
}

// chunkRows returns the largest row count, a multiple of align and at most
// max, whose cost fits the budget. Returns 0 when even align rows don't fit.
func chunkRows(budget, costPerRow int64, max, align int) int {
	if budget < 0 || costPerRow <= 0 {
		return 0
	}
	rows := budget / costPerRow
	if rows > int64(max) {
		rows = int64(max)
	}
	rows -= rows % int64(align)
	return int(rows)
}

// body returns the job's root-task function for the shared runtime.
func (jb *job) body(e *Engine) func(*core.Ctx) (uint64, error) {
	switch jb.mix.Workload {
	case WorkloadGEMM:
		return jb.gemmBody(e)
	case WorkloadSpMV:
		return jb.spmvBody(e)
	case WorkloadHotSpot:
		return jb.hotspotBody(e)
	case WorkloadSort:
		return jb.sortBody(e)
	default:
		return func(*core.Ctx) (uint64, error) {
			return 0, fmt.Errorf("serve: unknown workload %q", jb.mix.Workload)
		}
	}
}

// fileHash fingerprints a simulated output file (FNV-1a over its bytes)
// outside simulated time. Phantom runs hash an unwritten file, which reads
// as zeros — still deterministic.
func fileHash(b *core.Buffer) uint64 {
	f := b.File()
	if f == nil {
		return 0
	}
	buf := make([]byte, f.Size())
	if f.Peek(buf, 0) != nil {
		return 0
	}
	h := fnv.New64a()
	h.Write(buf)
	return h.Sum64()
}

// gemmBody computes C = A x B with B resident in the tenant's staging
// allowance and A/C streamed in row strips of plan.Strip rows.
func (jb *job) gemmBody(e *Engine) func(*core.Ctx) (uint64, error) {
	n := jb.mix.N
	return func(c *core.Ctx) (uint64, error) {
		rt := c.Runtime()
		matBytes := int64(n) * int64(n) * 4
		var aData, bData []byte
		if !rt.Phantom() {
			aData = view.F32Bytes(workload.Dense(n, n, jb.seed))
			bData = view.F32Bytes(workload.Dense(n, n, jb.seed+1))
		}
		fA, err := rt.CreateInput(c.Node(), jb.name("A"), matBytes, aData)
		if err != nil {
			return 0, err
		}
		defer c.Release(fA)
		fB, err := rt.CreateInput(c.Node(), jb.name("B"), matBytes, bData)
		if err != nil {
			return 0, err
		}
		defer c.Release(fB)
		fC, err := rt.CreateInput(c.Node(), jb.name("C"), matBytes, nil)
		if err != nil {
			return 0, err
		}
		defer c.Release(fC)

		err = func() error {
			bB, err := c.AllocAt(e.dram, matBytes)
			if err != nil {
				return err
			}
			defer c.Release(bB)
			if err := c.MoveDataDown(bB, fB, 0, 0, matBytes); err != nil {
				return err
			}
			for r0 := 0; r0 < n; r0 += jb.plan.Strip {
				rows := jb.plan.Strip
				if n-r0 < rows {
					rows = n - r0
				}
				stripBytes := int64(rows) * int64(n) * 4
				stripOff := int64(r0) * int64(n) * 4
				bA, err := c.AllocAt(e.dram, stripBytes)
				if err != nil {
					return err
				}
				bC, err := c.AllocAt(e.dram, stripBytes)
				if err != nil {
					c.Release(bA)
					return err
				}
				err = func() error {
					if err := c.MoveDataDown(bA, fA, 0, stripOff, stripBytes); err != nil {
						return err
					}
					var Cv, Av, Bv []float32
					if !rt.Phantom() {
						Cv, Av, Bv = view.F32(bC.Bytes()), view.F32(bA.Bytes()), view.F32(bB.Bytes())
					}
					kern, groups := gemm.TileKernel(Cv, Av, Bv, rows, n, n, false)
					if err := c.Descend(e.dram, func(lc *core.Ctx) error {
						_, kerr := lc.LaunchKernel(kern, groups)
						return kerr
					}); err != nil {
						return err
					}
					jb.jny.Mark(journey.PhaseMerge)
					uerr := c.MoveDataUp(fC, bC, stripOff, 0, stripBytes)
					jb.jny.Mark("")
					return uerr
				}()
				c.Release(bC)
				c.Release(bA)
				if err != nil {
					return err
				}
			}
			return nil
		}()
		if err != nil {
			return 0, err
		}
		return fileHash(fC), nil
	}
}

// spmvBody computes y = A x for a uniform CSR matrix, x and y resident,
// row chunks of plan.Strip rows streamed through staging.
func (jb *job) spmvBody(e *Engine) func(*core.Ctx) (uint64, error) {
	n := jb.mix.N
	return func(c *core.Ctx) (uint64, error) {
		rt := c.Runtime()
		vecBytes := int64(n) * 4
		rowCost := int64(spmvAvgNNZ) * 8
		var csr *workload.CSR
		var xv []float32
		var xData []byte
		if !rt.Phantom() {
			csr = workload.Sparse(workload.SparseUniform, n, spmvAvgNNZ, jb.seed)
			xv = workload.Vector(n, jb.seed+1)
			xData = view.F32Bytes(xv)
		}
		// The matrix file is sized by the uniform expectation; its staged
		// bytes drive timing while the functional kernel reads the host CSR.
		fM, err := rt.CreateInput(c.Node(), jb.name("M"), int64(n)*rowCost, nil)
		if err != nil {
			return 0, err
		}
		defer c.Release(fM)
		fX, err := rt.CreateInput(c.Node(), jb.name("x"), vecBytes, xData)
		if err != nil {
			return 0, err
		}
		defer c.Release(fX)
		fY, err := rt.CreateInput(c.Node(), jb.name("y"), vecBytes, nil)
		if err != nil {
			return 0, err
		}
		defer c.Release(fY)

		err = func() error {
			bX, err := c.AllocAt(e.dram, vecBytes)
			if err != nil {
				return err
			}
			defer c.Release(bX)
			if err := c.MoveDataDown(bX, fX, 0, 0, vecBytes); err != nil {
				return err
			}
			bY, err := c.AllocAt(e.dram, vecBytes)
			if err != nil {
				return err
			}
			defer c.Release(bY)
			var yv []float32
			if !rt.Phantom() {
				yv = view.F32(bY.Bytes())
			}
			for r0 := 0; r0 < n; r0 += jb.plan.Strip {
				rows := jb.plan.Strip
				if n-r0 < rows {
					rows = n - r0
				}
				chunkBytes := int64(rows) * rowCost
				bRows, err := c.AllocAt(e.dram, chunkBytes)
				if err != nil {
					return err
				}
				err = func() error {
					if err := c.MoveDataDown(bRows, fM, 0, int64(r0)*rowCost, chunkBytes); err != nil {
						return err
					}
					nnz := rows * spmvAvgNNZ
					r0, rows := r0, rows
					var fn func()
					if !rt.Phantom() {
						fn = func() {
							for r := r0; r < r0+rows; r++ {
								var sum float32
								for k := csr.RowPtr[r]; k < csr.RowPtr[r+1]; k++ {
									sum += csr.Val[k] * xv[csr.ColIdx[k]]
								}
								yv[r] = sum
							}
						}
					}
					return c.Descend(e.dram, func(lc *core.Ctx) error {
						_, cerr := lc.RunCPUParallel(2*float64(nnz), float64(chunkBytes)+2*4*float64(rows), fn)
						return cerr
					})
				}()
				c.Release(bRows)
				if err != nil {
					return err
				}
			}
			jb.jny.Mark(journey.PhaseMerge)
			uerr := c.MoveDataUp(fY, bY, 0, 0, vecBytes)
			jb.jny.Mark("")
			return uerr
		}()
		if err != nil {
			return 0, err
		}
		return fileHash(fY), nil
	}
}

// hotspotBody runs the thermal stencil with an in-band Jacobi sweep: the
// grid streams through staging in bands of plan.Strip rows per iteration.
// Band edges are treated as boundary rows — a per-job simplification that
// keeps each band independent (and therefore quota-bounded).
func (jb *job) hotspotBody(e *Engine) func(*core.Ctx) (uint64, error) {
	n := jb.mix.N
	return func(c *core.Ctx) (uint64, error) {
		rt := c.Runtime()
		gridBytes := int64(n) * int64(n) * 4
		var tempData, powerData []byte
		if !rt.Phantom() {
			tempData = view.F32Bytes(workload.Dense(n, n, jb.seed))
			powerData = view.F32Bytes(workload.Dense(n, n, jb.seed+1))
		}
		fT, err := rt.CreateInput(c.Node(), jb.name("T"), gridBytes, tempData)
		if err != nil {
			return 0, err
		}
		defer c.Release(fT)
		fP, err := rt.CreateInput(c.Node(), jb.name("P"), gridBytes, powerData)
		if err != nil {
			return 0, err
		}
		defer c.Release(fP)

		err = func() error {
			for iter := 0; iter < jb.mix.Iters; iter++ {
				for r0 := 0; r0 < n; r0 += jb.plan.Strip {
					rows := jb.plan.Strip
					if n-r0 < rows {
						rows = n - r0
					}
					bandBytes := int64(rows) * int64(n) * 4
					bandOff := int64(r0) * int64(n) * 4
					bIn, err := c.AllocAt(e.dram, bandBytes)
					if err != nil {
						return err
					}
					bOut, err := c.AllocAt(e.dram, bandBytes)
					if err != nil {
						c.Release(bIn)
						return err
					}
					bPow, err := c.AllocAt(e.dram, bandBytes)
					if err != nil {
						c.Release(bOut)
						c.Release(bIn)
						return err
					}
					err = func() error {
						if err := c.MoveDataDown(bIn, fT, 0, bandOff, bandBytes); err != nil {
							return err
						}
						if err := c.MoveDataDown(bPow, fP, 0, bandOff, bandBytes); err != nil {
							return err
						}
						kern := bandKernel(jb.name("hs"), rt.Phantom(), bIn, bOut, bPow, rows, n)
						groups := (rows / hotspot.BlockDim) * (n / hotspot.BlockDim)
						if err := c.Descend(e.dram, func(lc *core.Ctx) error {
							_, kerr := lc.LaunchKernel(kern, groups)
							return kerr
						}); err != nil {
							return err
						}
						jb.jny.Mark(journey.PhaseMerge)
						uerr := c.MoveDataUp(fT, bOut, bandOff, 0, bandBytes)
						jb.jny.Mark("")
						return uerr
					}()
					c.Release(bPow)
					c.Release(bOut)
					c.Release(bIn)
					if err != nil {
						return err
					}
				}
			}
			return nil
		}()
		if err != nil {
			return 0, err
		}
		return fileHash(fT), nil
	}
}

// bandKernel builds the per-band stencil kernel: hotspot's roofline costs,
// and functionally a 5-point Jacobi step over the band with clamped edges.
func bandKernel(name string, phantom bool, bIn, bOut, bPow *core.Buffer, rows, n int) gpu.Kernel {
	k := gpu.Kernel{
		Name:          name,
		FlopsPerGroup: hotspot.TileFlops,
		BytesPerGroup: hotspot.TileBytes,
		LocalBytes:    4 * (hotspot.BlockDim + 2) * (hotspot.BlockDim + 2),
	}
	if phantom {
		return k
	}
	in, out, pow := view.F32(bIn.Bytes()), view.F32(bOut.Bytes()), view.F32(bPow.Bytes())
	tilesX := n / hotspot.BlockDim
	at := func(i, j int) float32 {
		if i < 0 {
			i = 0
		}
		if i >= rows {
			i = rows - 1
		}
		if j < 0 {
			j = 0
		}
		if j >= n {
			j = n - 1
		}
		return in[i*n+j]
	}
	k.Run = func(group int) {
		ty, tx := group/tilesX, group%tilesX
		for i := ty * hotspot.BlockDim; i < (ty+1)*hotspot.BlockDim; i++ {
			for j := tx * hotspot.BlockDim; j < (tx+1)*hotspot.BlockDim; j++ {
				center := in[i*n+j]
				out[i*n+j] = center + float32(0.1)*(at(i-1, j)+at(i+1, j)+at(i, j-1)+at(i, j+1)-4*center) +
					float32(0.05)*pow[i*n+j]
			}
		}
	}
	return k
}

// sortBody runs the sorted-runs pass of an out-of-core sort: chunks of
// plan.Strip keys are staged, sorted on the CPU, and written back as
// independent sorted runs.
func (jb *job) sortBody(e *Engine) func(*core.Ctx) (uint64, error) {
	n := jb.mix.N
	return func(c *core.Ctx) (uint64, error) {
		rt := c.Runtime()
		keysBytes := int64(n) * 4
		var inData []byte
		if !rt.Phantom() {
			inData = view.F32Bytes(oocsort.Keys(n, jb.seed))
		}
		fIn, err := rt.CreateInput(c.Node(), jb.name("keys"), keysBytes, inData)
		if err != nil {
			return 0, err
		}
		defer c.Release(fIn)
		fOut, err := rt.CreateInput(c.Node(), jb.name("runs"), keysBytes, nil)
		if err != nil {
			return 0, err
		}
		defer c.Release(fOut)

		err = func() error {
			for k0 := 0; k0 < n; k0 += jb.plan.Strip {
				keys := jb.plan.Strip
				if n-k0 < keys {
					keys = n - k0
				}
				chunkBytes := int64(keys) * 4
				chunkOff := int64(k0) * 4
				b, err := c.AllocAt(e.dram, chunkBytes)
				if err != nil {
					return err
				}
				err = func() error {
					if err := c.MoveDataDown(b, fIn, 0, chunkOff, chunkBytes); err != nil {
						return err
					}
					flops := float64(keys) * math.Log2(float64(keys)+2)
					var fn func()
					if !rt.Phantom() {
						fn = func() {
							v := view.F32(b.Bytes())
							sort.Slice(v, func(i, j int) bool { return v[i] < v[j] })
						}
					}
					if err := c.Descend(e.dram, func(lc *core.Ctx) error {
						_, cerr := lc.RunCPUParallel(flops, 2*float64(chunkBytes), fn)
						return cerr
					}); err != nil {
						return err
					}
					jb.jny.Mark(journey.PhaseMerge)
					uerr := c.MoveDataUp(fOut, b, chunkOff, 0, chunkBytes)
					jb.jny.Mark("")
					return uerr
				}()
				c.Release(b)
				if err != nil {
					return err
				}
			}
			return nil
		}()
		if err != nil {
			return 0, err
		}
		return fileHash(fOut), nil
	}
}
