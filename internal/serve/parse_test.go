package serve

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/journey"
	"repro/internal/sim"
)

const sampleYAML = `
# Two tenants sharing one APU tree.
name: sample
seed: 42
duration: 500ms
workers: 3
topology:
  preset: apu-hdd
  storage_mib: 512
  dram_mib: 128
tenants:
  - name: alpha
    rate: 120/s
    weight: 2
    quota_mib: 24
    slo: 20ms
    mix:
      - workload: gemm
        n: 256
      - workload: sort
        n: 100000
        weight: 3
  - name: beta
    rate: 0.5      # bare numbers are jobs/s too
    quota_mib: 8
    max_jobs: 9
    max_queue: 4
    mix:
      - workload: hotspot
        n: 64
        iters: 2
`

func TestParseScenarioYAML(t *testing.T) {
	scn, err := ParseScenario([]byte(sampleYAML))
	if err != nil {
		t.Fatal(err)
	}
	if scn.Name != "sample" || scn.Seed != 42 || scn.Workers != 3 {
		t.Fatalf("header mismatch: %+v", scn)
	}
	if scn.Duration != 500*sim.Millisecond {
		t.Fatalf("duration = %d", scn.Duration)
	}
	if scn.Topology.Preset != "apu-hdd" || scn.Topology.DRAMMiB != 128 {
		t.Fatalf("topology mismatch: %+v", scn.Topology)
	}
	if len(scn.Tenants) != 2 {
		t.Fatalf("want 2 tenants, got %d", len(scn.Tenants))
	}
	a, b := scn.Tenants[0], scn.Tenants[1]
	if a.Rate != 120 || a.Weight != 2 || a.SLO != 20*sim.Millisecond {
		t.Fatalf("alpha mismatch: %+v", a)
	}
	if a.Mix[1].Weight != 3 || a.Mix[0].Weight != 1 {
		t.Fatalf("mix weights: %+v", a.Mix)
	}
	if b.Rate != 0.5 || b.MaxJobs != 9 || b.MaxQueue != 4 {
		t.Fatalf("beta mismatch: %+v", b)
	}
	if b.Weight != 1 || b.Mix[0].Iters != 2 {
		t.Fatalf("beta defaults: %+v", b)
	}
}

func TestParseScenarioDefaults(t *testing.T) {
	scn, err := ParseScenario([]byte(`
name: tiny
duration: 1s
tenants:
  - name: only
    rate: 1/s
    quota_mib: 4
    mix:
      - workload: sort
        n: 1000
`))
	if err != nil {
		t.Fatal(err)
	}
	if scn.Workers != 2 {
		t.Fatalf("default workers = %d", scn.Workers)
	}
	if scn.Topology.Preset != "apu-ssd" || scn.Topology.StorageMiB != 1024 || scn.Topology.DRAMMiB != 256 {
		t.Fatalf("default topology = %+v", scn.Topology)
	}
	if tn := scn.Tenants[0]; tn.Weight != 1 || tn.MaxQueue != 64 || tn.Mix[0].Weight != 1 {
		t.Fatalf("tenant defaults = %+v", tn)
	}
}

func TestParseScenarioJSON(t *testing.T) {
	scn, err := ParseScenario([]byte(`{
  "name": "json-sample",
  "seed": 7,
  "duration": "250ms",
  "topology": {"preset": "apu-ssd", "dram_mib": 64},
  "tenants": [
    {"name": "a", "rate": "10/s", "quota_mib": 16,
     "mix": [{"workload": "spmv", "n": 5000}]}
  ]
}`))
	if err != nil {
		t.Fatal(err)
	}
	if scn.Name != "json-sample" || scn.Duration != 250*sim.Millisecond {
		t.Fatalf("mismatch: %+v", scn)
	}
	if scn.Tenants[0].Rate != 10 {
		t.Fatalf("rate = %g", scn.Tenants[0].Rate)
	}
}

// TestParseScenarioErrors drives every rejection class the DSL promises:
// syntax, schema and semantic failures all return errors (and, per the
// fuzz tier, never panic).
func TestParseScenarioErrors(t *testing.T) {
	base := func(mut func(s string) string) string {
		return mut(`name: x
duration: 1s
tenants:
  - name: a
    rate: 10/s
    quota_mib: 4
    mix:
      - workload: sort
        n: 100
`)
	}
	cases := []struct {
		name string
		in   string
		want string
	}{
		{"empty", "", "empty scenario"},
		{"comment only", "# nothing\n", "empty document"},
		{"tab indent", "name: x\n\ttenants:\n", "tabs"},
		{"bad line", "name x\n", "key: value"},
		{"duplicate key", "name: x\nname: y\n", "duplicate key"},
		{"flow style", "tenants: [a, b]\n", "flow collections"},
		{"unknown top key", base(func(s string) string { return s + "zone: z\n" }), `unknown key "zone"`},
		{"unknown tenant key", strings.Replace(base(func(s string) string { return s }),
			"rate: 10/s", "rate: 10/s\n    color: red", 1), `unknown key "color"`},
		{"negative rate", strings.Replace(base(func(s string) string { return s }),
			"rate: 10/s", "rate: -3/s", 1), "must be positive"},
		{"bad rate", strings.Replace(base(func(s string) string { return s }),
			"rate: 10/s", "rate: fast", 1), "not a rate"},
		{"zero quota", strings.Replace(base(func(s string) string { return s }),
			"quota_mib: 4", "quota_mib: 0", 1), "quota"},
		{"unknown workload", strings.Replace(base(func(s string) string { return s }),
			"workload: sort", "workload: raytrace", 1), "unknown workload"},
		{"gemm misaligned", strings.Replace(base(func(s string) string { return s }),
			"workload: sort", "workload: gemm", 1), "multiple of 64"},
		{"no tenants", "name: x\nduration: 1s\ntenants:\n", "tenants"},
		{"no horizon", strings.Replace(base(func(s string) string { return s }),
			"duration: 1s", "duration: 0s", 1), "never stop"},
		{"bad duration", strings.Replace(base(func(s string) string { return s }),
			"duration: 1s", "duration: soon", 1), "not a duration"},
		{"huge n", strings.Replace(base(func(s string) string { return s }),
			"n: 100", "n: 99999999", 1), "ceiling"},
		{"bad json", `{"name": 3 &&&`, "bad JSON"},
		{"json trailing", `{"name": "x"} tail`, "trailing data"},
		{"duplicate tenant", strings.Replace(base(func(s string) string { return s }),
			"duration: 1s", "duration: 1s\nworkers: 2", 1) + `  - name: a
    rate: 1/s
    quota_mib: 4
    mix:
      - workload: sort
        n: 10
`, "duplicate tenant"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseScenario([]byte(tc.in))
			if err == nil {
				t.Fatalf("expected an error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestYAMLQuoting(t *testing.T) {
	scn, err := ParseScenario([]byte(`
name: "quoted # name"
duration: '2s'
tenants:
  - name: 'it''s'
    rate: "10/s"
    quota_mib: 4
    mix:
      - workload: sort
        n: 100
`))
	if err != nil {
		t.Fatal(err)
	}
	if scn.Name != "quoted # name" {
		t.Fatalf("name = %q", scn.Name)
	}
	if scn.Duration != 2*sim.Second {
		t.Fatalf("duration = %d", scn.Duration)
	}
	if scn.Tenants[0].Name != "it's" {
		t.Fatalf("tenant name = %q", scn.Tenants[0].Name)
	}
}

const opsYAML = `
name: ops-sample
seed: 3
duration: 1m
ops:
  step: 2s
  window: 20s
  top_k: 5
  trace_events: 1024
tenants:
  - name: a
    rate: 10/s
    quota_mib: 4
    slo: 5ms
    slo_target: 0.995
    mix:
      - workload: sort
        n: 100
alerts:
  - name: a-fast-burn
    tenant: a
    metric: slo_burn
    threshold: 14.4
    fast_window: 5m
    slow_window: 1h
    severity: page
  - name: a-slow-p99
    tenant: a
    metric: p99_latency_ns
    threshold: 20ms
    fast_window: 15m
    slow_window: 1h
    severity: ticket
`

// TestParseOpsAndAlerts checks the ops block and alert rules decode with
// duration-syntax thresholds and per-tenant SLO targets.
func TestParseOpsAndAlerts(t *testing.T) {
	scn, err := ParseScenario([]byte(opsYAML))
	if err != nil {
		t.Fatal(err)
	}
	if !scn.OpsEnabled() {
		t.Fatal("ops block did not enable the plane")
	}
	if scn.Ops.Step != 2*sim.Second || scn.Ops.Window != 20*sim.Second {
		t.Fatalf("ops cadence = %+v", scn.Ops)
	}
	if scn.Ops.TopK != 5 || scn.Ops.TraceEvents != 1024 {
		t.Fatalf("ops sizing = %+v", scn.Ops)
	}
	if got := scn.Tenants[0].SLOTarget; got != 0.995 {
		t.Fatalf("slo_target = %g, want 0.995", got)
	}
	if len(scn.Alerts) != 2 {
		t.Fatalf("want 2 alert rules, got %d", len(scn.Alerts))
	}
	fast, p99 := scn.Alerts[0], scn.Alerts[1]
	if fast.Name != "a-fast-burn" || fast.Metric != MetricSLOBurn || fast.Threshold != 14.4 {
		t.Fatalf("fast rule = %+v", fast)
	}
	if fast.FastWindow != 300*sim.Second || fast.SlowWindow != 3600*sim.Second || fast.Severity != "page" {
		t.Fatalf("fast rule windows = %+v", fast)
	}
	// Duration syntax for latency-valued thresholds: 20ms -> ns.
	if p99.Metric != MetricP99 || p99.Threshold != float64(20*sim.Millisecond) {
		t.Fatalf("p99 rule = %+v", p99)
	}
}

// TestParseBurnRateScenarioFile parses the committed burn-rate scenario,
// keeping the DSL documentation honest.
func TestParseBurnRateScenarioFile(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("..", "..", "specs", "scenarios", "burn-rate.yaml"))
	if err != nil {
		t.Fatal(err)
	}
	scn, err := ParseScenario(data)
	if err != nil {
		t.Fatal(err)
	}
	if scn.Name != "burn-rate" || !scn.OpsEnabled() {
		t.Fatalf("burn-rate scenario header = %+v", scn)
	}
	if len(scn.Alerts) != 2 {
		t.Fatalf("want 2 alert rules, got %d", len(scn.Alerts))
	}
	for _, r := range scn.Alerts {
		if r.Tenant != "bursty" || r.Metric != MetricSLOBurn {
			t.Fatalf("unexpected rule %+v", r)
		}
	}
}

// TestParseOpsAndAlertErrors walks the strict-parser and validation
// rejections for the ops block and alert rules.
func TestParseOpsAndAlertErrors(t *testing.T) {
	mut := func(old, new string) string {
		s := strings.Replace(opsYAML, old, new, 1)
		if s == opsYAML {
			t.Fatalf("mutation %q -> %q did not apply", old, new)
		}
		return s
	}
	cases := []struct {
		name string
		in   string
		want string
	}{
		{"unknown ops key", mut("top_k: 5", "top_k: 5\n  cadence: fast"), `unknown key "cadence"`},
		{"unknown alert key", mut("severity: page", "severity: page\n    pager: oncall"), `unknown key "pager"`},
		{"duplicate rule name", mut("name: a-slow-p99", "name: a-fast-burn"), `duplicate alert rule "a-fast-burn"`},
		{"unknown metric", mut("metric: slo_burn", "metric: goodput"), `unknown metric "goodput"`},
		{"unknown severity", mut("severity: page", "severity: siren"), `unknown severity "siren"`},
		{"unknown tenant", mut("tenant: a\n    metric: slo_burn", "tenant: b\n    metric: slo_burn"), `unknown tenant "b"`},
		{"slow shorter than fast", mut("slow_window: 1h\n    severity: page", "slow_window: 1m\n    severity: page"), "shorter than fast window"},
		{"zero fast window", mut("fast_window: 5m", "fast_window: 0s"), "fast window must be positive"},
		{"negative threshold", mut("threshold: 14.4", "threshold: -1"), "must be non-negative"},
		{"bad threshold", mut("threshold: 14.4", "threshold: lots"), "not a number or duration"},
		{"window below step", mut("window: 20s", "window: 1s"), "shorter than step"},
		{"negative ops field", mut("top_k: 5", "top_k: -2"), "out of range"},
		{"slo_target too high", mut("slo_target: 0.995", "slo_target: 1.5"), "must lie in (0, 1)"},
		{"rule without name", mut("name: a-fast-burn", "name: ''"), "rule has no name"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseScenario([]byte(tc.in))
			if err == nil {
				t.Fatalf("expected an error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

const journeysYAML = `
name: jny
seed: 3
workers: 1
topology:
  preset: apu-ssd
  storage_mib: 64
  dram_mib: 16
tenants:
  - name: a
    rate: 10/s
    quota_mib: 4
    max_jobs: 3
    mix:
      - workload: sort
        n: 1000
journeys:
  enabled: true
  sample: 0.25
  max_segments: 64
`

// TestParseJourneys covers the journeys block: parsed values, defaults when
// fields are omitted, and the strict-parser/validation rejections.
func TestParseJourneys(t *testing.T) {
	scn, err := ParseScenario([]byte(journeysYAML))
	if err != nil {
		t.Fatal(err)
	}
	if !scn.JourneysEnabled() || scn.Journeys.Sample != 0.25 || scn.Journeys.MaxSegments != 64 {
		t.Fatalf("journeys spec = %+v", scn.Journeys)
	}

	// Omitting sample and max_segments picks full sampling and the default
	// segment cap once defaults are applied.
	bare := strings.Replace(journeysYAML, "  sample: 0.25\n  max_segments: 64\n", "", 1)
	scn, err = ParseScenario([]byte(bare))
	if err != nil {
		t.Fatal(err)
	}
	if scn.Journeys.Sample != 1.0 || scn.Journeys.MaxSegments != journey.DefaultMaxSegments {
		t.Fatalf("journeys defaults = %+v", scn.Journeys)
	}

	// Without the block, the layer stays off entirely.
	off := strings.Replace(journeysYAML, "journeys:\n  enabled: true\n  sample: 0.25\n  max_segments: 64\n", "", 1)
	if scn, err = ParseScenario([]byte(off)); err != nil {
		t.Fatal(err)
	}
	if scn.JourneysEnabled() {
		t.Fatalf("journeys enabled without a block: %+v", scn.Journeys)
	}

	cases := []struct {
		name, old, new, want string
	}{
		{"unknown key", "max_segments: 64", "max_segments: 64\n  color: red", `unknown key "color"`},
		{"sample above 1", "sample: 0.25", "sample: 1.5", "must lie in (0, 1]"},
		{"negative sample", "sample: 0.25", "sample: -0.5", "must lie in (0, 1]"},
		{"bad max_segments", "max_segments: 64", "max_segments: -3", "out of range"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			in := strings.Replace(journeysYAML, tc.old, tc.new, 1)
			if in == journeysYAML {
				t.Fatalf("mutation %q did not apply", tc.old)
			}
			_, err := ParseScenario([]byte(in))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %v does not mention %q", err, tc.want)
			}
		})
	}
}
