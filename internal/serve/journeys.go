package serve

import (
	"fmt"

	"repro/internal/journey"
	"repro/internal/obs"
	"repro/internal/trace"
)

// This file wires the journey layer (internal/journey) into the serve
// engine: deterministic sampling at admission, causal "queued behind"
// edges, rejection instants, and the export/analyzer accessors.
//
// Everything here is gated on e.jny != nil and observes state the engine
// already computes — no RNG draws, no schedule edges, no event insertions
// outside the trace/metrics observation planes — so a run with journeys
// enabled produces a byte-identical job schedule to one with them off.

// Reject instant names are static strings so the trace stream stays
// allocation-predictable and grep-friendly.
const (
	instantRejectQuota    = "admission-reject:quota"
	instantRejectMinStrip = "admission-reject:min_strip"
	instantRejectBacklog  = "admission-reject:backlog"
)

// admissionTrack is the staging-node lane that carries admission-control
// instants in the exported trace.
const admissionTrack = "admission"

// sampleJourney applies the tenant's deterministic sampling stride and, when
// the job is selected, opens its journey. Called before the queue push so
// Snapshot reflects exactly the jobs this one will wait behind.
func (e *Engine) sampleJourney(t *tenantState, jb *job) {
	t.jnyAcc += e.scn.Journeys.Sample
	if t.jnyAcc < 1 {
		return
	}
	t.jnyAcc--
	var behind []string
	if queued := t.q.Snapshot(); len(queued) > 0 {
		behind = make([]string, 0, len(queued))
		for _, q := range queued {
			behind = append(behind, journey.TraceID(e.scn.Seed, q.tenant, q.id))
		}
	}
	jb.jny = e.jny.Admit(jb.tenant, jb.id, jb.mix.Workload, jb.mix.N, jb.arrive, behind)
}

// noteReject records one admission rejection: a reason-labelled counter in
// the tenant's registry and, when tracing is on, an instant on the staging
// node's admission lane. Journeys-gated so runs without the layer keep
// byte-identical metric and trace streams.
func (e *Engine) noteReject(t *tenantState, reason string) {
	if e.jny == nil {
		return
	}
	if t.rejReason == nil {
		t.rejReason = make(map[string]*obs.Counter)
	}
	c := t.rejReason[reason]
	if c == nil {
		c = t.reg.Counter("northup_admission_reject_total",
			"admission rejections by cause (journeys layer)",
			obs.L("tenant", t.spec.Name), obs.L("reason", reason))
		t.rejReason[reason] = c
	}
	c.Inc()
	if e.rec != nil {
		name := instantRejectQuota
		switch reason {
		case rejectMinStrip:
			name = instantRejectMinStrip
		case rejectBacklog:
			name = instantRejectBacklog
		}
		e.rec.Instant(trace.Lane{Node: e.dram.ID, Track: admissionTrack},
			name, e.eng.Now(), int64(t.idx))
	}
}

// Journeys returns the run's journey recorder, or nil when the scenario did
// not enable the layer.
func (e *Engine) Journeys() *journey.Recorder { return e.jny }

// TailReport decomposes the q-quantile latency of every tenant's completed
// journeys into phase contributions. Nil when journeys are off.
func (e *Engine) TailReport(q float64) *journey.TailReport {
	if e.jny == nil {
		return nil
	}
	return journey.Tail(e.jny.Jobs(), q)
}

// TraceEvents returns the runtime trace ring's retained events plus, when
// journeys are on, the synthesized per-job journey lanes ("job:<trace-id>")
// appended with sequence numbers past the runtime stream's maximum — the
// live ring itself is never touched.
func (e *Engine) TraceEvents() []trace.Event {
	if e.rec == nil {
		return nil
	}
	events := e.rec.Events()
	if e.jny != nil {
		events = append(events, journey.ChromeEvents(e.jny.Jobs(), journey.MaxSeq(events)+1)...)
	}
	return events
}

// TraceNodeLabel names a topology node for the Chrome exporter's process
// metadata ("dram L1"), mirroring northup.TraceNodeLabeler for callers that
// only hold the serve engine.
func (e *Engine) TraceNodeLabel(id int) string {
	if id < 0 || id >= e.tree.NumNodes() {
		return ""
	}
	n := e.tree.Node(id)
	return fmt.Sprintf("%s L%d", n.Mem.Kind(), n.Level)
}

// TraceDropped returns how many events the bounded trace ring discarded.
func (e *Engine) TraceDropped() int64 {
	if e.rec == nil {
		return 0
	}
	return e.rec.Dropped()
}
