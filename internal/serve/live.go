package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/ops"
	"repro/internal/sim"
)

// This file is the live half of the operations plane: a wall-clock-paced
// driver that slices the deterministic simulation with RunUntil, and an
// HTTP admin handler that reads the engine's state between slices. The
// simulation itself stays single-goroutine — HTTP handlers and the driver
// serialize on one mutex, and handlers only ever read — so pacing and
// serving change nothing about the virtual-time schedule. The same
// scenario and seed produce the same reports whether run flat-out through
// Engine.Run or sliced through Live.RunPaced.

// DefaultSlice is the virtual-time quantum RunPaced executes per step when
// the caller passes zero.
const DefaultSlice = 100 * sim.Millisecond

// Live wraps an Engine for paced execution with a concurrent admin plane.
type Live struct {
	e *Engine

	mu   sync.Mutex
	done bool
	rep  *Report
	err  error
}

// NewLive wraps an unstarted engine.
func NewLive(e *Engine) *Live { return &Live{e: e} }

// Report returns the final report once the run has completed, else nil.
func (l *Live) Report() *Report {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.rep
}

// RunPaced executes the scenario in slices of `slice` virtual time,
// sleeping between slices so virtual time advances at `pace` virtual
// seconds per wall-clock second. pace <= 0 disables the sleeps (the run
// proceeds flat out but still releases the lock between slices, so the
// admin handlers stay responsive). It returns the final report, exactly
// as Engine.Run would have produced for the unpaced run.
func (l *Live) RunPaced(pace float64, slice sim.Time) (*Report, error) {
	if slice <= 0 {
		slice = DefaultSlice
	}
	l.mu.Lock()
	if err := l.e.start(); err != nil {
		l.mu.Unlock()
		return nil, err
	}
	l.mu.Unlock()

	wallStart := time.Now()
	for {
		l.mu.Lock()
		if _, ok := l.e.eng.Peek(); !ok {
			// Queue drained: either every process finished or the engine
			// would have reported a deadlock. Run settles which.
			rep, err := l.settle(l.e.eng.Run())
			l.mu.Unlock()
			return rep, err
		}
		deadline := l.e.eng.Now() + slice
		if err := l.e.eng.RunUntil(deadline); err != nil {
			rep, rerr := l.settle(err)
			l.mu.Unlock()
			return rep, rerr
		}
		now := l.e.eng.Now()
		l.mu.Unlock()

		if pace > 0 {
			wallTarget := time.Duration(float64(now) / pace)
			if ahead := wallTarget - time.Since(wallStart); ahead > 0 {
				time.Sleep(ahead)
			}
		}
	}
}

// settle finishes the run under the held lock: on success it builds the
// final report, on failure it records the engine error. Either way the
// admin plane keeps answering from the terminal state.
func (l *Live) settle(err error) (*Report, error) {
	l.done = true
	if err != nil {
		l.e.detach()
		l.err = fmt.Errorf("serve: scenario %q: %w", l.e.scn.Name, err)
		return nil, l.err
	}
	l.rep = l.e.finish()
	return l.rep, nil
}

// Handler returns the admin-plane HTTP handler:
//
//	/metrics — merged registry in Prometheus text format
//	/healthz — run status, virtual clock, firing-alert count
//	/tenants — per-tenant health: cumulative counts, windowed values,
//	           currently firing alerts
//	/alerts  — the alert timeline so far plus currently firing alerts
//
// All endpoints are read-only snapshots of the simulation between slices.
func (l *Live) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", l.handleMetrics)
	mux.HandleFunc("/healthz", l.handleHealthz)
	mux.HandleFunc("/tenants", l.handleTenants)
	mux.HandleFunc("/alerts", l.handleAlerts)
	return mux
}

func (l *Live) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.e.rt.SyncMetrics()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	l.e.MergedRegistry().WritePrometheus(w)
}

// Health is the /healthz document.
type Health struct {
	Status string `json:"status"` // serving, done or error
	NowNS  int64  `json:"now_ns"`
	Firing int    `json:"firing"`
	Error  string `json:"error,omitempty"`
}

func (l *Live) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	l.mu.Lock()
	h := Health{Status: "serving", NowNS: int64(l.e.eng.Now())}
	if l.e.plane != nil {
		h.Firing = len(l.e.plane.Firing())
	}
	if l.done {
		h.Status = "done"
	}
	if l.err != nil {
		h.Status = "error"
		h.Error = l.err.Error()
	}
	l.mu.Unlock()
	writeIndentedJSON(w, h)
}

// TenantHealth is one tenant's entry in the /tenants document. Cumulative
// fields come from the tenant's counters; the Window* fields are the ops
// plane's trailing-window values (zero without the plane).
type TenantHealth struct {
	Name           string            `json:"name"`
	Arrivals       int64             `json:"arrivals"`
	Admitted       int64             `json:"admitted"`
	Rejected       int64             `json:"rejected"`
	Completed      int64             `json:"completed"`
	JobErrors      int64             `json:"job_errors"`
	SLOViolations  int64             `json:"slo_violations"`
	QueueDepth     int64             `json:"queue_depth"`
	InflightBytes  int64             `json:"inflight_bytes"`
	WindowArrivals float64           `json:"window_arrivals,omitempty"`
	WindowP50NS    float64           `json:"window_p50_ns,omitempty"`
	WindowP99NS    float64           `json:"window_p99_ns,omitempty"`
	Firing         []ops.FiringAlert `json:"firing,omitempty"`
}

// TenantsDoc is the /tenants document.
type TenantsDoc struct {
	NowNS   int64          `json:"now_ns"`
	Tenants []TenantHealth `json:"tenants"`
}

func (l *Live) handleTenants(w http.ResponseWriter, _ *http.Request) {
	l.mu.Lock()
	doc := l.tenantsDoc()
	l.mu.Unlock()
	writeIndentedJSON(w, doc)
}

// tenantsDoc snapshots per-tenant health; the caller holds the lock.
func (l *Live) tenantsDoc() TenantsDoc {
	doc := TenantsDoc{NowNS: int64(l.e.eng.Now())}
	for _, t := range l.e.tenants {
		th := TenantHealth{
			Name:          t.spec.Name,
			Arrivals:      t.arrivals.Value(),
			Admitted:      t.admitted.Value(),
			Rejected:      t.rejQuota.Value() + t.rejBacklog.Value(),
			Completed:     t.completed.Value(),
			JobErrors:     t.jobErrors.Value(),
			SLOViolations: t.sloViol.Value(),
			QueueDepth:    int64(t.q.Len()),
			InflightBytes: t.inflight,
		}
		if l.e.plane != nil {
			wdt := l.e.plane.Width()
			tw := l.e.twatch[t.spec.Name]
			th.WindowArrivals = tw.arrivals.Over(wdt)
			th.WindowP50NS = tw.p50.Over(wdt)
			th.WindowP99NS = tw.p99.Over(wdt)
			th.Firing = l.e.plane.FiringFor(t.spec.Name)
		}
		doc.Tenants = append(doc.Tenants, th)
	}
	return doc
}

// AlertsDoc is the /alerts document: every transition so far plus what is
// firing right now.
type AlertsDoc struct {
	NowNS  int64             `json:"now_ns"`
	Firing []ops.FiringAlert `json:"firing,omitempty"`
	Events []ops.AlertEvent  `json:"events"`
}

func (l *Live) handleAlerts(w http.ResponseWriter, _ *http.Request) {
	l.mu.Lock()
	doc := AlertsDoc{NowNS: int64(l.e.eng.Now()), Events: []ops.AlertEvent{}}
	if l.e.plane != nil {
		doc.Firing = l.e.plane.Firing()
		doc.Events = append(doc.Events, l.e.plane.Events()...)
	}
	l.mu.Unlock()
	writeIndentedJSON(w, doc)
}

// writeIndentedJSON renders v as deterministic indented JSON.
func writeIndentedJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
