package serve

// A hand-rolled decoder for the YAML subset the scenario DSL uses. The
// module deliberately has zero dependencies, so rather than pull in a YAML
// library this file implements exactly what scenario files need:
//
//   - indentation-scoped mappings  (key: value / key: <nested block>)
//   - block sequences              (- item / - key: value ...)
//   - plain, single- and double-quoted scalars
//   - full-line and trailing "#" comments, blank lines
//
// Anchors, aliases, flow collections, multi-line scalars, tags and multiple
// documents are all rejected with errors. The decoder produces the same
// generic tree shape as encoding/json — map[string]any, []any, string — so
// parse.go walks one representation for both front ends. All scalars stay
// strings here; typing (ints, rates, durations) happens in parse.go where
// field context is known.

import (
	"fmt"
	"strings"
)

// yamlLine is one significant (non-blank, non-comment) line of input.
type yamlLine struct {
	num    int    // 1-based line number for error messages
	indent int    // leading spaces
	text   string // content with indentation and trailing comment removed
}

// decodeYAML parses the DSL's YAML subset into a generic tree.
func decodeYAML(data []byte) (any, error) {
	lines, err := splitYAMLLines(string(data))
	if err != nil {
		return nil, err
	}
	if len(lines) == 0 {
		return nil, fmt.Errorf("yaml: empty document")
	}
	v, rest, err := parseYAMLBlock(lines, lines[0].indent)
	if err != nil {
		return nil, err
	}
	if len(rest) > 0 {
		return nil, fmt.Errorf("yaml: line %d: unexpected de-indent to column %d",
			rest[0].num, rest[0].indent)
	}
	return v, nil
}

// splitYAMLLines strips comments and blanks and records indentation.
func splitYAMLLines(src string) ([]yamlLine, error) {
	var out []yamlLine
	for i, raw := range strings.Split(src, "\n") {
		line := strings.TrimRight(raw, " \t\r")
		trimmed := strings.TrimLeft(line, " ")
		indent := len(line) - len(trimmed)
		if strings.HasPrefix(trimmed, "\t") {
			return nil, fmt.Errorf("yaml: line %d: tabs are not allowed in indentation", i+1)
		}
		if trimmed == "" || strings.HasPrefix(trimmed, "#") {
			continue
		}
		if trimmed == "---" || trimmed == "..." {
			if len(out) > 0 {
				return nil, fmt.Errorf("yaml: line %d: multiple documents are not supported", i+1)
			}
			continue
		}
		if cut := findYAMLComment(trimmed); cut >= 0 {
			trimmed = strings.TrimRight(trimmed[:cut], " \t")
			if trimmed == "" {
				continue
			}
		}
		out = append(out, yamlLine{num: i + 1, indent: indent, text: trimmed})
	}
	return out, nil
}

// findYAMLComment returns the index of a trailing comment's "#", or -1.
// A "#" only opens a comment when preceded by whitespace (or at the start)
// and not inside a quoted scalar — so "rate: 10  # jobs" trims, while
// "name: a#b" and "name: 'a # b'" do not.
func findYAMLComment(s string) int {
	var quote byte
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case quote != 0:
			if c == quote {
				quote = 0
			}
		case c == '\'' || c == '"':
			quote = c
		case c == '#' && (i == 0 || s[i-1] == ' ' || s[i-1] == '\t'):
			return i
		}
	}
	return -1
}

// parseYAMLBlock parses the run of lines at exactly the given indentation,
// returning the decoded value and the lines that follow the block.
func parseYAMLBlock(lines []yamlLine, indent int) (any, []yamlLine, error) {
	if len(lines) == 0 {
		return nil, nil, fmt.Errorf("yaml: empty block")
	}
	if lines[0].indent != indent {
		return nil, nil, fmt.Errorf("yaml: line %d: bad indentation %d (block starts at %d)",
			lines[0].num, lines[0].indent, indent)
	}
	if isYAMLListItem(lines[0].text) {
		return parseYAMLSequence(lines, indent)
	}
	return parseYAMLMapping(lines, indent)
}

func isYAMLListItem(text string) bool {
	return text == "-" || strings.HasPrefix(text, "- ")
}

// parseYAMLMapping parses "key: ..." lines at the given indentation.
func parseYAMLMapping(lines []yamlLine, indent int) (map[string]any, []yamlLine, error) {
	m := map[string]any{}
	for len(lines) > 0 {
		ln := lines[0]
		if ln.indent < indent {
			break
		}
		if ln.indent > indent {
			return nil, nil, fmt.Errorf("yaml: line %d: unexpected indentation %d inside mapping at %d",
				ln.num, ln.indent, indent)
		}
		if isYAMLListItem(ln.text) {
			return nil, nil, fmt.Errorf("yaml: line %d: sequence item inside mapping", ln.num)
		}
		key, val, hasVal, err := splitYAMLKey(ln)
		if err != nil {
			return nil, nil, err
		}
		if _, dup := m[key]; dup {
			return nil, nil, fmt.Errorf("yaml: line %d: duplicate key %q", ln.num, key)
		}
		lines = lines[1:]
		if hasVal {
			m[key] = val
			continue
		}
		// "key:" introduces a nested block — or an empty value when the
		// next line is not further indented.
		if len(lines) == 0 || lines[0].indent <= indent {
			m[key] = nil
			continue
		}
		child, rest, err := parseYAMLBlock(lines, lines[0].indent)
		if err != nil {
			return nil, nil, err
		}
		m[key] = child
		lines = rest
	}
	return m, lines, nil
}

// parseYAMLSequence parses "- ..." lines at the given indentation.
func parseYAMLSequence(lines []yamlLine, indent int) ([]any, []yamlLine, error) {
	seq := []any{}
	for len(lines) > 0 {
		ln := lines[0]
		if ln.indent < indent {
			break
		}
		if ln.indent > indent {
			return nil, nil, fmt.Errorf("yaml: line %d: unexpected indentation %d inside sequence at %d",
				ln.num, ln.indent, indent)
		}
		if !isYAMLListItem(ln.text) {
			return nil, nil, fmt.Errorf("yaml: line %d: expected sequence item, got %q", ln.num, ln.text)
		}
		if ln.text == "-" {
			// Item body is the following more-indented block.
			lines = lines[1:]
			if len(lines) == 0 || lines[0].indent <= indent {
				return nil, nil, fmt.Errorf("yaml: line %d: empty sequence item", ln.num)
			}
			child, rest, err := parseYAMLBlock(lines, lines[0].indent)
			if err != nil {
				return nil, nil, err
			}
			seq = append(seq, child)
			lines = rest
			continue
		}
		body := strings.TrimLeft(ln.text[2:], " ")
		inner := ln.indent + (len(ln.text) - len(body))
		if colonIdx(body) < 0 {
			// Plain scalar item.
			v, err := parseYAMLScalar(body, ln.num)
			if err != nil {
				return nil, nil, err
			}
			seq = append(seq, v)
			lines = lines[1:]
			continue
		}
		// "- key: ..." opens an inline mapping: re-enter the mapping parser
		// with the dash replaced by spaces, so subsequent keys of this item
		// align under the first.
		rewritten := append([]yamlLine{{num: ln.num, indent: inner, text: body}}, lines[1:]...)
		child, rest, err := parseYAMLMapping(rewritten, inner)
		if err != nil {
			return nil, nil, err
		}
		seq = append(seq, child)
		lines = rest
	}
	return seq, lines, nil
}

// colonIdx finds the key/value separator — a ":" at end-of-string or
// followed by a space, outside quotes — or returns -1.
func colonIdx(s string) int {
	var quote byte
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case quote != 0:
			if c == quote {
				quote = 0
			}
		case c == '\'' || c == '"':
			quote = c
		case c == ':' && (i == len(s)-1 || s[i+1] == ' '):
			return i
		}
	}
	return -1
}

// splitYAMLKey splits a mapping line into key and optional scalar value.
func splitYAMLKey(ln yamlLine) (key string, val any, hasVal bool, err error) {
	idx := colonIdx(ln.text)
	if idx < 0 {
		return "", nil, false, fmt.Errorf("yaml: line %d: expected \"key: value\", got %q", ln.num, ln.text)
	}
	key = strings.TrimSpace(ln.text[:idx])
	if key == "" {
		return "", nil, false, fmt.Errorf("yaml: line %d: empty key", ln.num)
	}
	if k, ok := unquoteYAML(key); ok {
		key = k
	} else if strings.HasPrefix(key, "'") || strings.HasPrefix(key, "\"") {
		return "", nil, false, fmt.Errorf("yaml: line %d: unterminated quoted key", ln.num)
	}
	rest := strings.TrimSpace(ln.text[idx+1:])
	if rest == "" {
		return key, nil, false, nil
	}
	v, err := parseYAMLScalar(rest, ln.num)
	if err != nil {
		return "", nil, false, err
	}
	return key, v, true, nil
}

// parseYAMLScalar decodes one scalar token. Everything stays a string —
// typing happens against the schema — but quoting is resolved here and
// flow-style collections are rejected.
func parseYAMLScalar(s string, num int) (any, error) {
	if v, ok := unquoteYAML(s); ok {
		return v, nil
	}
	switch s[0] {
	case '\'', '"':
		return nil, fmt.Errorf("yaml: line %d: unterminated quoted scalar %s", num, s)
	case '[', '{':
		return nil, fmt.Errorf("yaml: line %d: flow collections are not supported", num)
	case '&', '*', '!', '|', '>', '%', '@', '`':
		return nil, fmt.Errorf("yaml: line %d: unsupported YAML feature %q", num, s)
	}
	return s, nil
}

// unquoteYAML strips matching surrounding quotes. Double quotes honour the
// \" \\ \n \t escapes; single quotes honour the ” escape.
func unquoteYAML(s string) (string, bool) {
	if len(s) < 2 {
		return "", false
	}
	q := s[0]
	if (q != '\'' && q != '"') || s[len(s)-1] != q {
		return "", false
	}
	body := s[1 : len(s)-1]
	var sb strings.Builder
	for i := 0; i < len(body); i++ {
		c := body[i]
		switch {
		case q == '\'' && c == '\'':
			if i+1 >= len(body) || body[i+1] != '\'' {
				return "", false // a lone interior quote means mismatched ends
			}
			sb.WriteByte('\'')
			i++
		case q == '"' && c == '"':
			return "", false
		case q == '"' && c == '\\':
			if i+1 >= len(body) {
				return "", false
			}
			i++
			switch body[i] {
			case 'n':
				sb.WriteByte('\n')
			case 't':
				sb.WriteByte('\t')
			case '\\', '"', '\'':
				sb.WriteByte(body[i])
			default:
				return "", false
			}
		default:
			sb.WriteByte(c)
		}
	}
	return sb.String(), true
}
