package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"repro/internal/ops"
	"repro/internal/sim"
)

// ReportSchema versions the serve report JSON.
const ReportSchema = "northup-serve/v1"

// TenantReport is one tenant's served-traffic summary.
type TenantReport struct {
	Name          string           `json:"name"`
	Arrivals      int64            `json:"arrivals"`
	Admitted      int64            `json:"admitted"`
	Rejected      map[string]int64 `json:"rejected,omitempty"`
	Completed     int64            `json:"completed"`
	JobErrors     int64            `json:"job_errors"`
	SLOViolations int64            `json:"slo_violations"`
	P50NS         int64            `json:"p50_ns"`
	P99NS         int64            `json:"p99_ns"`
	MaxNS         int64            `json:"max_ns"`
	MeanNS        int64            `json:"mean_ns"`
	// ThroughputJPS is completions per simulated second over the full run.
	ThroughputJPS float64 `json:"throughput_jps"`
}

// EngineStats is the simulation engine's cost profile in the report. The
// counts are deterministic (same scenario+seed, same counts); the wall
// fields depend on the host and appear only with RunOptions.WallStats, so
// deterministic outputs never carry them.
type EngineStats struct {
	Events       int64   `json:"events"`
	Callbacks    int64   `json:"callbacks"`
	Procs        int64   `json:"procs"`
	EventsPerSec float64 `json:"events_per_sec,omitempty"`
	WallMS       float64 `json:"wall_ms,omitempty"`
}

// Report summarizes one scenario run.
type Report struct {
	Schema     string         `json:"schema"`
	Scenario   string         `json:"scenario"`
	Seed       int64          `json:"seed"`
	Phantom    bool           `json:"phantom"`
	ElapsedNS  int64          `json:"elapsed_ns"`
	Tenants    []TenantReport `json:"tenants"`
	TotalJobs  int64          `json:"total_jobs"`
	TotalBytes int64          `json:"total_work_bytes"`
	// Alerts is the ops plane's deterministic fire/resolve timeline
	// (absent when the scenario does not enable the plane).
	Alerts []ops.AlertEvent `json:"alerts,omitempty"`
	// Engine is the simulation engine's self-measurement.
	Engine *EngineStats `json:"engine,omitempty"`
}

// buildReport snapshots per-tenant metrics after the engine drains.
func (e *Engine) buildReport() *Report {
	rep := &Report{
		Schema:    ReportSchema,
		Scenario:  e.scn.Name,
		Seed:      e.scn.Seed,
		Phantom:   e.opts.Phantom,
		ElapsedNS: int64(e.eng.Now()),
	}
	elapsedSec := float64(e.eng.Now()) / float64(sim.Second)
	for _, t := range e.tenants {
		tr := TenantReport{
			Name:          t.spec.Name,
			Arrivals:      t.arrivals.Value(),
			Admitted:      t.admitted.Value(),
			Completed:     t.completed.Value(),
			JobErrors:     t.jobErrors.Value(),
			SLOViolations: t.sloViol.Value(),
			P50NS:         t.latHist.Quantile(0.50),
			P99NS:         t.latHist.Quantile(0.99),
			MaxNS:         t.latHist.Max(),
		}
		if n := t.latHist.Count(); n > 0 {
			tr.MeanNS = t.latHist.Sum() / n
		}
		if rq, rb := t.rejQuota.Value(), t.rejBacklog.Value(); rq+rb > 0 {
			tr.Rejected = map[string]int64{}
			if rq > 0 {
				tr.Rejected["quota"] = rq
			}
			if rb > 0 {
				tr.Rejected["backlog"] = rb
			}
		}
		if elapsedSec > 0 {
			tr.ThroughputJPS = float64(tr.Completed) / elapsedSec
		}
		rep.TotalJobs += tr.Completed
		rep.Tenants = append(rep.Tenants, tr)
	}
	for _, rec := range e.records {
		if rec.Err == "" {
			// Work accounting uses the planned WFQ bytes of finished jobs.
			plan, _, err := planJob(MixEntry{Workload: rec.Workload, N: rec.N, Iters: itersOf(e.scn, rec)}, quotaOf(e.scn, rec.Tenant))
			if err == nil {
				rep.TotalBytes += plan.WorkBytes
			}
		}
	}
	rep.Alerts = e.AlertEvents()
	st := e.eng.Stats()
	rep.Engine = &EngineStats{Events: st.Events, Callbacks: st.Callbacks, Procs: st.Procs}
	if e.opts.WallStats {
		rep.Engine.EventsPerSec = st.EventsPerSec()
		rep.Engine.WallMS = float64(st.Wall.Nanoseconds()) / 1e6
	}
	return rep
}

func quotaOf(s *Scenario, tenant string) int64 {
	for i := range s.Tenants {
		if s.Tenants[i].Name == tenant {
			return s.Tenants[i].QuotaBytes()
		}
	}
	return 0
}

func itersOf(s *Scenario, rec JobRecord) int {
	for i := range s.Tenants {
		if s.Tenants[i].Name != rec.Tenant {
			continue
		}
		for _, m := range s.Tenants[i].Mix {
			if m.Workload == rec.Workload && m.N == rec.N {
				return m.Iters
			}
		}
	}
	return 1
}

// WriteJSON writes the report as indented, key-stable JSON (maps render
// with sorted keys), byte-identical across runs of the same scenario+seed.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// String renders the report as a fixed-width table.
func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "scenario %s (seed %d, %s) — %s simulated\n",
		r.Scenario, r.Seed, modeName(r.Phantom), fmtDur(r.ElapsedNS))
	fmt.Fprintf(&sb, "%-12s %8s %8s %8s %8s %6s %10s %10s %10s\n",
		"tenant", "arrive", "admit", "reject", "done", "slo!", "p50", "p99", "max")
	for _, t := range r.Tenants {
		var rej int64
		for _, v := range t.Rejected {
			rej += v
		}
		fmt.Fprintf(&sb, "%-12s %8d %8d %8d %8d %6d %10s %10s %10s\n",
			t.Name, t.Arrivals, t.Admitted, rej, t.Completed, t.SLOViolations,
			fmtDur(t.P50NS), fmtDur(t.P99NS), fmtDur(t.MaxNS))
	}
	return sb.String()
}

func modeName(phantom bool) string {
	if phantom {
		return "phantom"
	}
	return "functional"
}

func fmtDur(ns int64) string {
	switch {
	case ns >= int64(sim.Second):
		return fmt.Sprintf("%.2fs", float64(ns)/float64(sim.Second))
	case ns >= int64(sim.Millisecond):
		return fmt.Sprintf("%.2fms", float64(ns)/float64(sim.Millisecond))
	case ns >= int64(sim.Microsecond):
		return fmt.Sprintf("%.2fµs", float64(ns)/float64(sim.Microsecond))
	default:
		return fmt.Sprintf("%dns", ns)
	}
}
