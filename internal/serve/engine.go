package serve

import (
	"fmt"
	"hash/fnv"
	"math/rand"

	"repro/internal/core"
	"repro/internal/journey"
	"repro/internal/obs"
	"repro/internal/ops"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/trace"
)

// RunOptions tunes one engine run.
type RunOptions struct {
	// Phantom runs timing-only: buffers carry no payload bytes and job
	// result hashes fingerprint unwritten (all-zero) files. Latencies are
	// bit-identical to a functional run.
	Phantom bool
	// WallStats adds wall-clock fields (events/sec, wall ms) to the
	// report's engine stats. Off by default so reports stay byte-identical
	// across runs; the deterministic counts (events, callbacks, procs) are
	// always reported.
	WallStats bool
	// Trace forces the trace recorder on even without the ops plane, so a
	// run can be exported as a Chrome trace (northup-serve -trace-out).
	// Tracing is observation only; the schedule is unchanged.
	Trace bool
}

// JobRecord is the per-job outcome log, in completion order. Tests use it
// to compare runs job-by-job (bit-exact hashes, exact virtual timestamps).
type JobRecord struct {
	Tenant   string `json:"tenant"`
	ID       int    `json:"id"`
	Workload string `json:"workload"`
	N        int    `json:"n"`
	ArriveNS int64  `json:"arrive_ns"`
	StartNS  int64  `json:"start_ns"`
	DoneNS   int64  `json:"done_ns"`
	Hash     uint64 `json:"hash"`
	Err      string `json:"err,omitempty"`
}

// latencyBuckets are the fixed serve histogram bounds (ns): 100µs to 100s
// in a 1-2-5 ladder, so percentile extraction is deterministic and merges
// stay associative.
var latencyBuckets = []int64{
	100e3, 200e3, 500e3,
	1e6, 2e6, 5e6,
	10e6, 20e6, 50e6,
	100e6, 200e6, 500e6,
	1e9, 2e9, 5e9,
	10e9, 20e9, 50e9,
	100e9,
}

// tenantState is one tenant's live serving state plus its private metrics
// registry (merged on demand by MergedRegistry).
type tenantState struct {
	idx  int
	spec *Tenant
	reg  *obs.Registry
	q    *sched.Deque[*job]
	rng  *rand.Rand

	quota    int64   // staging quota in bytes
	inflight int64   // footprint of dispatched, unfinished jobs
	vft      float64 // weighted-fair-queueing virtual finish time
	mixCum   []float64
	jobSeq   int
	jnyAcc   float64 // journey sampling stride accumulator (no RNG draws)

	rejReason map[string]*obs.Counter // lazy, keyed by reject reason; journeys only

	arrivals   *obs.Counter
	admitted   *obs.Counter
	rejQuota   *obs.Counter
	rejBacklog *obs.Counter
	completed  *obs.Counter
	jobErrors  *obs.Counter
	sloViol    *obs.Counter
	latHist    *obs.Histogram
	waitHist   *obs.Histogram
	depthG     *obs.Gauge
	inflightG  *obs.Gauge

	depthSlot *core.QueueDepthSlot
}

// Engine executes one scenario: per-tenant Poisson admitters feed
// per-tenant FIFO queues, and a fixed pool of dispatch workers drains them
// by weighted-fair queueing, running each admitted job as a root task on
// the one shared runtime.
type Engine struct {
	scn  *Scenario
	opts RunOptions

	eng  *sim.Engine
	tree *topo.Tree
	rt   *core.Runtime
	dram *topo.Node

	tenants []*tenantState
	runReg  *obs.Registry // the shared runtime's own registry

	// Live operations plane (ops.go), nil unless the scenario enables it.
	plane    *ops.Plane
	rec      *trace.Recorder
	twatch   map[string]*tenantWatch
	ruleFast map[string]sim.Time // rule name -> fast window, for attribution

	// Journey recorder (journeys.go), nil unless the scenario enables it.
	// Everything it feeds — sampling, span mirroring, exemplars, reject
	// instants — is observation only and gated on jny != nil, so a run with
	// journeys off is byte-identical to one that never had the layer.
	jny *journey.Recorder

	idle         []*sim.Latch // parked dispatch workers
	arrivalsOpen int
	outstanding  int    // admitted but not yet finished jobs
	detachQueues func() // releases the staging node's queue monitors

	records []JobRecord
	ran     bool
}

// New builds an engine for a scenario. Defaults are applied to a private
// copy first, so the caller's scenario is not mutated and may be reused
// across engines.
func New(scn *Scenario, opts RunOptions) (*Engine, error) {
	scn = scn.withDefaults()
	if err := scn.Validate(); err != nil {
		return nil, err
	}
	eng := sim.NewEngine()
	storage := topo.SSD
	if scn.Topology.Preset == "apu-hdd" {
		storage = topo.HDD
	}
	tree := topo.APU(eng, topo.APUConfig{
		Storage:    storage,
		StorageMiB: scn.Topology.StorageMiB,
		DRAMMiB:    scn.Topology.DRAMMiB,
		WithCPU:    true,
	})
	runReg := obs.NewRegistry()
	// The ops plane's health attribution reads the trace event stream, so
	// tracing rides along whenever the plane is on. Tracing is observation
	// only — it never alters the schedule — so ops scenarios keep the same
	// job timeline they would have without it.
	var rec *trace.Recorder
	if scn.OpsEnabled() || opts.Trace {
		rec = trace.NewRecorder(trace.Options{MaxEvents: scn.Ops.TraceEvents})
	}
	rt := core.NewRuntime(eng, tree, core.Options{
		Phantom: opts.Phantom,
		Metrics: runReg,
		Trace:   rec,
	})
	e := &Engine{
		scn:      scn,
		opts:     opts,
		eng:      eng,
		tree:     tree,
		rt:       rt,
		dram:     tree.Node(1),
		runReg:   runReg,
		rec:      rec,
		ruleFast: map[string]sim.Time{},
	}
	if scn.Journeys.Enabled {
		e.jny = journey.NewRecorder(scn.Seed, scn.Journeys.MaxSegments)
	}
	for i := range scn.Tenants {
		e.tenants = append(e.tenants, e.newTenantState(i, &scn.Tenants[i]))
	}
	if scn.OpsEnabled() {
		if err := e.initOps(); err != nil {
			return nil, err
		}
	}
	return e, nil
}

// tenantSeed derives a tenant's RNG seed from the scenario seed and the
// tenant's name (not its position, so reordering tenants in the file does
// not change anyone's traffic).
func tenantSeed(scnSeed int64, name string) int64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return scnSeed ^ int64(h.Sum64())
}

func (e *Engine) newTenantState(idx int, spec *Tenant) *tenantState {
	reg := obs.NewRegistry()
	lbl := obs.L("tenant", spec.Name)
	t := &tenantState{
		idx:   idx,
		spec:  spec,
		reg:   reg,
		q:     sched.NewDeque[*job]("serve-" + spec.Name),
		rng:   rand.New(rand.NewSource(tenantSeed(e.scn.Seed, spec.Name))),
		quota: spec.QuotaBytes(),

		arrivals:   reg.Counter("northup_serve_arrivals_total", "jobs offered by the tenant's arrival process", lbl),
		admitted:   reg.Counter("northup_serve_admitted_total", "jobs accepted into the tenant's queue", lbl),
		rejQuota:   reg.Counter("northup_serve_rejected_total", "jobs rejected at admission", lbl, obs.L("reason", "quota")),
		rejBacklog: reg.Counter("northup_serve_rejected_total", "jobs rejected at admission", lbl, obs.L("reason", "backlog")),
		completed:  reg.Counter("northup_serve_completed_total", "jobs finished successfully", lbl),
		jobErrors:  reg.Counter("northup_serve_job_errors_total", "jobs that failed while running", lbl),
		sloViol:    reg.Counter("northup_serve_slo_violations_total", "completions slower than the tenant SLO", lbl),
		latHist:    reg.Histogram("northup_serve_latency_ns", "arrival-to-completion latency", latencyBuckets, lbl),
		waitHist:   reg.Histogram("northup_serve_wait_ns", "arrival-to-dispatch queueing delay", latencyBuckets, lbl),
		depthG:     reg.Gauge("northup_serve_queue_depth", "admitted jobs waiting for dispatch", lbl),
		inflightG:  reg.Gauge("northup_serve_inflight_bytes", "staging footprint of running jobs", lbl),
	}
	// Weight prefix sums for mix draws.
	cum := 0.0
	for _, m := range spec.Mix {
		cum += m.Weight
		t.mixCum = append(t.mixCum, cum)
	}
	// The tenant queue publishes its depth both as a tenant-labelled serve
	// gauge and — through an additive slot — into the shared runtime's
	// per-node northup_queue_depth, alongside any in-job stealing queues.
	t.depthSlot = e.rt.NewQueueDepthSlot(e.dram.ID)
	depth := func() {
		t.depthG.Set(float64(t.q.Len()))
		t.depthSlot.Set(int64(t.q.Len()))
	}
	t.q.OnPush = depth
	t.q.OnPop = depth
	t.q.OnSteal = depth
	return t
}

// pickMix draws one mix entry by weight from the tenant RNG.
func (t *tenantState) pickMix() MixEntry {
	total := t.mixCum[len(t.mixCum)-1]
	x := t.rng.Float64() * total
	for i, c := range t.mixCum {
		if x < c {
			return t.spec.Mix[i]
		}
	}
	return t.spec.Mix[len(t.spec.Mix)-1]
}

// Run executes the scenario to completion — every tenant's arrival process
// exhausted and every admitted job finished — and returns the report.
// An Engine runs once.
func (e *Engine) Run() (*Report, error) {
	if err := e.start(); err != nil {
		return nil, err
	}
	if err := e.eng.Run(); err != nil {
		e.detach()
		return nil, fmt.Errorf("serve: scenario %q: %w", e.scn.Name, err)
	}
	return e.finish(), nil
}

// start arms the scenario's event machinery without running it: tenant
// queues attach to the staging node, arrival chains and workers launch,
// and — when the ops plane is on — its evaluation ticks arm. The live
// server uses start/RunUntil/finish to slice the same run across wall
// time; Run is start + one full engine run + finish.
func (e *Engine) start() error {
	if e.ran {
		return fmt.Errorf("serve: engine already ran")
	}
	e.ran = true

	// Tenant queues are visible on the staging node for the lifetime of
	// the run, next to any queues the jobs themselves attach.
	var monitors []sched.Monitor
	for _, t := range e.tenants {
		monitors = append(monitors, t.q)
	}
	e.detachQueues = e.dram.AttachQueues(monitors...)

	// Arrival processes ride the engine's callback fast path: each tenant is
	// a self-rescheduling timer, not a goroutine — an arrival draws the next
	// gap, admits, and re-arms, all inline in the dispatch loop. The At(0)
	// start events claim the same schedule slots the old Spawn start events
	// did, and each tick draws from the tenant RNG in the same order the
	// blocking loop did, so traffic is byte-identical to the proc version.
	e.arrivalsOpen = len(e.tenants)
	for _, t := range e.tenants {
		e.eng.At(0, e.startArrivals(t))
	}
	for w := 0; w < e.scn.Workers; w++ {
		w := w
		e.eng.Spawn(fmt.Sprintf("serve-worker-%d", w), func(p *sim.Proc) {
			e.runWorker(p)
		})
	}
	if e.plane != nil {
		e.armOpsTicks()
	}
	return nil
}

// finish settles the drained run: metrics sync, a final plane tick at the
// drain instant (deduplicated if a step tick already landed there), depth
// slots close, queues detach, and the report is built.
func (e *Engine) finish() *Report {
	e.rt.SyncMetrics()
	if e.plane != nil {
		e.plane.Tick(e.eng.Now())
	}
	for _, t := range e.tenants {
		t.depthSlot.Close()
	}
	e.detach()
	return e.buildReport()
}

// detach releases the staging node's queue monitors, once.
func (e *Engine) detach() {
	if e.detachQueues != nil {
		e.detachQueues()
		e.detachQueues = nil
	}
}

// startArrivals builds one tenant's open-loop Poisson arrival process as a
// callback chain: the returned start callback arms the first gap, and every
// subsequent tick admits one job and re-arms. The draw/check/admit order
// matches the old blocking loop exactly — next-gap draw, duration cutoff,
// then admission at the wake instant — so the schedule is unchanged.
func (e *Engine) startArrivals(t *tenantState) func() {
	count := 0
	var tick func()
	arm := func() {
		if t.spec.MaxJobs > 0 && count >= t.spec.MaxJobs {
			e.closeArrivals()
			return
		}
		dt := sim.Time(t.rng.ExpFloat64() / t.spec.Rate * float64(sim.Second))
		if e.scn.Duration > 0 && e.eng.Now()+dt > e.scn.Duration {
			e.closeArrivals()
			return
		}
		e.eng.After(dt, tick)
	}
	tick = func() {
		count++
		e.admit(t)
		arm()
	}
	return arm
}

// closeArrivals retires one tenant's arrival process; when the last one
// closes, parked workers are released so they can observe the drain.
func (e *Engine) closeArrivals() {
	e.arrivalsOpen--
	if e.arrivalsOpen == 0 {
		e.wakeAll()
	}
}

// admit runs admission control for one arrival: plan the job against the
// tenant quota, apply the backlog cap, and enqueue or reject.
func (e *Engine) admit(t *tenantState) {
	t.arrivals.Inc()
	mix := t.pickMix()
	seed := t.rng.Int63()
	plan, reason, err := planJob(mix, t.quota)
	if err != nil {
		t.rejQuota.Inc()
		e.noteReject(t, reason)
		return
	}
	if t.q.Len() >= t.spec.MaxQueue {
		t.rejBacklog.Inc()
		e.noteReject(t, rejectBacklog)
		return
	}
	jb := &job{
		tenant: t.spec.Name,
		id:     t.jobSeq,
		mix:    mix,
		seed:   seed,
		arrive: e.eng.Now(),
		plan:   plan,
	}
	t.jobSeq++
	t.admitted.Inc()
	// Sample before the push so the journey's "behind" edge reflects the
	// jobs already queued ahead of this one.
	if e.jny != nil {
		e.sampleJourney(t, jb)
	}
	t.q.PushTail(jb)
	e.outstanding++
	e.wakeOne()
}

// pickJob selects the next dispatchable job: among tenants whose oldest
// queued job fits their remaining quota, the one with the smallest
// weighted-fair virtual finish time (ties to the lowest tenant index).
// Per-tenant order is strictly FIFO — a head that does not fit holds the
// tenant back until in-flight work retires.
func (e *Engine) pickJob() (*tenantState, *job) {
	var best *tenantState
	for _, t := range e.tenants {
		head, ok := t.q.PeekHead()
		if !ok || t.inflight+head.plan.Footprint > t.quota {
			continue
		}
		if best == nil || t.vft < best.vft {
			best = t
		}
	}
	if best == nil {
		return nil, nil
	}
	jb, _ := best.q.StealHead()
	return best, jb
}

// runWorker is one dispatch slot: it drains queues by WFQ order, parking
// on a latch when nothing is dispatchable.
func (e *Engine) runWorker(p *sim.Proc) {
	for {
		t, jb := e.pickJob()
		if jb == nil {
			if e.arrivalsOpen == 0 && e.outstanding == 0 {
				return
			}
			l := sim.NewLatch(e.eng)
			e.idle = append(e.idle, l)
			l.Wait(p)
			continue
		}
		e.dispatch(p, t, jb)
	}
}

// dispatch charges the tenant's WFQ account, runs the job as a root task
// on the shared runtime, and settles metrics and records at completion.
func (e *Engine) dispatch(p *sim.Proc, t *tenantState, jb *job) {
	t.inflight += jb.plan.Footprint
	t.inflightG.Set(float64(t.inflight))
	t.vft += float64(jb.plan.WorkBytes) / t.spec.Weight

	start := p.Now()
	t.waitHist.Observe(int64(start - jb.arrive))
	if jb.jny != nil {
		jb.jny.Dispatched(start)
	}

	body := jb.body(e)
	var hash uint64
	name := fmt.Sprintf("serve:%s-j%04d-%s", jb.tenant, jb.id, jb.mix.Workload)
	join := e.rt.Start(name, func(c *core.Ctx) error {
		// The job runs on its own fresh proc, so attaching the journey as
		// that proc's span sink mirrors exactly the charges this job incurs
		// — a pure read of the charge stream, invisible to the schedule.
		if jb.jny != nil {
			defer c.AttachSpanSink(jb.jny)()
		}
		h, err := body(c)
		hash = h
		return err
	})
	err := join.WaitOn(p)
	done := p.Now()

	lat := int64(done - jb.arrive)
	if jb.jny != nil {
		jb.jny.Finish(done, err != nil)
		e.jny.Complete(jb.jny)
		t.latHist.ObserveExemplar(lat, jb.jny.TraceID)
	} else {
		t.latHist.Observe(lat)
	}
	if err != nil {
		t.jobErrors.Inc()
	} else {
		t.completed.Inc()
		if t.spec.SLO > 0 && lat > int64(t.spec.SLO) {
			t.sloViol.Inc()
		}
	}
	rec := JobRecord{
		Tenant:   jb.tenant,
		ID:       jb.id,
		Workload: jb.mix.Workload,
		N:        jb.mix.N,
		ArriveNS: int64(jb.arrive),
		StartNS:  int64(start),
		DoneNS:   int64(done),
		Hash:     hash,
	}
	if err != nil {
		rec.Err = err.Error()
	}
	e.records = append(e.records, rec)

	t.inflight -= jb.plan.Footprint
	t.inflightG.Set(float64(t.inflight))
	e.outstanding--
	// Retired footprint may unblock any tenant's head (and the drain
	// condition), so every parked worker gets to re-evaluate.
	e.wakeAll()
}

// wakeOne releases one parked worker, if any.
func (e *Engine) wakeOne() {
	if n := len(e.idle); n > 0 {
		l := e.idle[n-1]
		e.idle = e.idle[:n-1]
		l.Fire()
	}
}

// wakeAll releases every parked worker.
func (e *Engine) wakeAll() {
	idle := e.idle
	e.idle = nil
	for _, l := range idle {
		l.Fire()
	}
}

// Records returns the per-job outcome log in completion order.
func (e *Engine) Records() []JobRecord { return e.records }

// Runtime exposes the shared runtime (tests inspect its metrics registry).
func (e *Engine) Runtime() *core.Runtime { return e.rt }

// Now returns the engine's current virtual time.
func (e *Engine) Now() sim.Time { return e.eng.Now() }

// MergedRegistry merges the shared runtime's registry and every tenant's
// registry into one fresh registry, in deterministic (tenant declaration)
// order. obs merging is associative and commutative, so any merge order
// yields the same totals — the determinism property test holds serve to
// that, mirroring Cluster.MergedMetrics.
func (e *Engine) MergedRegistry() *obs.Registry {
	m := obs.NewRegistry()
	m.Merge(e.runReg)
	for _, t := range e.tenants {
		m.Merge(t.reg)
	}
	if e.plane != nil {
		m.Merge(e.plane.Registry())
	}
	return m
}

// TenantRegistry returns the named tenant's private registry, or nil.
func (e *Engine) TenantRegistry(name string) *obs.Registry {
	for _, t := range e.tenants {
		if t.spec.Name == name {
			return t.reg
		}
	}
	return nil
}
