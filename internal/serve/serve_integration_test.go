package serve

import (
	"reflect"
	"testing"
)

// alphaTenant is the well-behaved tenant shared by both integration runs.
func alphaTenant() Tenant {
	return Tenant{
		Name:     "alpha",
		Rate:     50,
		QuotaMiB: 16,
		MaxJobs:  8,
		Mix: []MixEntry{
			{Workload: WorkloadGEMM, N: 128},
			{Workload: WorkloadSort, N: 10000},
		},
	}
}

// TestQuotaIsolation is the serve tier's central claim: a tenant that
// persistently exceeds its memory quota is rejected at admission and has
// no effect on another tenant — neither on its latency distribution (p99)
// nor on its bit-exact results.
//
// Run A serves alpha alone; run B adds beta, whose every job (gemm n=512,
// 1 MiB resident B alone fills the quota) is unplannable within 1 MiB.
// Both runs are functional, so result hashes fingerprint real output.
func TestQuotaIsolation(t *testing.T) {
	topoSpec := TopoSpec{Preset: "apu-ssd", StorageMiB: 512, DRAMMiB: 64}

	solo := &Scenario{
		Name: "alpha-solo", Seed: 99, Workers: 2,
		Topology: topoSpec,
		Tenants:  []Tenant{alphaTenant()},
	}
	solo.applyDefaults()

	overQuota := Tenant{
		Name:     "beta",
		Rate:     200,
		QuotaMiB: 1,
		MaxJobs:  20,
		Mix:      []MixEntry{{Workload: WorkloadGEMM, N: 512}},
	}
	shared := &Scenario{
		Name: "alpha-vs-beta", Seed: 99, Workers: 2,
		Topology: topoSpec,
		Tenants:  []Tenant{alphaTenant(), overQuota},
	}
	shared.applyDefaults()

	runOne := func(scn *Scenario) (*Engine, *Report) {
		e, err := New(scn, RunOptions{Phantom: false})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		return e, rep
	}
	eSolo, repSolo := runOne(solo)
	eShared, repShared := runOne(shared)

	// Every beta arrival is rejected for quota; nothing is ever admitted.
	var beta *TenantReport
	for i := range repShared.Tenants {
		if repShared.Tenants[i].Name == "beta" {
			beta = &repShared.Tenants[i]
		}
	}
	if beta == nil {
		t.Fatal("no beta tenant in shared report")
	}
	if beta.Arrivals != 20 {
		t.Fatalf("beta arrivals = %d, want 20", beta.Arrivals)
	}
	if beta.Admitted != 0 || beta.Completed != 0 {
		t.Fatalf("over-quota beta was served: %+v", beta)
	}
	if beta.Rejected["quota"] != beta.Arrivals {
		t.Fatalf("beta rejections %v, want all %d with reason quota", beta.Rejected, beta.Arrivals)
	}

	// The rejections are visible in the northup_serve_* counters.
	flat := eShared.TenantRegistry("beta").Flatten()
	found := false
	for name, v := range flat {
		if v == float64(beta.Arrivals) &&
			len(name) > len("northup_serve_rejected_total") &&
			name[:len("northup_serve_rejected_total")] == "northup_serve_rejected_total" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no northup_serve_rejected_total counter carries beta's %d rejections: %v",
			beta.Arrivals, flat)
	}

	// Alpha's jobs are bit-for-bit unaffected: same arrivals, starts,
	// completions and output hashes in both runs.
	alphaRecs := func(e *Engine) []JobRecord {
		var out []JobRecord
		for _, r := range e.Records() {
			if r.Tenant == "alpha" {
				out = append(out, r)
			}
		}
		return out
	}
	soloRecs, sharedRecs := alphaRecs(eSolo), alphaRecs(eShared)
	if len(soloRecs) == 0 {
		t.Fatal("alpha completed no jobs")
	}
	if !reflect.DeepEqual(soloRecs, sharedRecs) {
		t.Fatalf("alpha's jobs changed under beta's pressure:\nsolo   %+v\nshared %+v", soloRecs, sharedRecs)
	}
	for _, r := range soloRecs {
		if r.Err != "" {
			t.Fatalf("alpha job failed: %+v", r)
		}
		if r.Hash == 0 {
			t.Fatalf("alpha job missing functional hash: %+v", r)
		}
	}

	// And so is its latency distribution, p99 included.
	var aSolo, aShared *TenantReport
	for i := range repSolo.Tenants {
		if repSolo.Tenants[i].Name == "alpha" {
			aSolo = &repSolo.Tenants[i]
		}
	}
	for i := range repShared.Tenants {
		if repShared.Tenants[i].Name == "alpha" {
			aShared = &repShared.Tenants[i]
		}
	}
	if aSolo.P99NS != aShared.P99NS || aSolo.P50NS != aShared.P50NS || aSolo.MaxNS != aShared.MaxNS {
		t.Fatalf("alpha latency moved: solo p50/p99/max %d/%d/%d, shared %d/%d/%d",
			aSolo.P50NS, aSolo.P99NS, aSolo.MaxNS, aShared.P50NS, aShared.P99NS, aShared.MaxNS)
	}
	if aSolo.Completed != aShared.Completed || aSolo.SLOViolations != aShared.SLOViolations {
		t.Fatalf("alpha outcome counts moved: solo %+v, shared %+v", aSolo, aShared)
	}
}

// TestBacklogRejection covers the second admission path: a tenant whose
// queue cap is tiny sheds load with reason "backlog" while still finishing
// what it admitted.
func TestBacklogRejection(t *testing.T) {
	scn := &Scenario{
		Name: "backlog", Seed: 5, Workers: 1,
		Topology: TopoSpec{Preset: "apu-ssd", StorageMiB: 256, DRAMMiB: 64},
		Tenants: []Tenant{{
			Name: "burst", Rate: 5000, QuotaMiB: 16, MaxJobs: 40, MaxQueue: 2,
			Mix: []MixEntry{{Workload: WorkloadGEMM, N: 256}},
		}},
	}
	scn.applyDefaults()
	e, err := New(scn, RunOptions{Phantom: true})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	tr := rep.Tenants[0]
	if tr.Rejected["backlog"] == 0 {
		t.Fatalf("burst tenant was never backlog-limited: %+v", tr)
	}
	if tr.Completed == 0 {
		t.Fatalf("burst tenant completed nothing: %+v", tr)
	}
	if tr.Admitted != tr.Completed+tr.JobErrors {
		t.Fatalf("admitted %d != completed %d + errors %d", tr.Admitted, tr.Completed, tr.JobErrors)
	}
	if got := tr.Arrivals; got != tr.Admitted+tr.Rejected["backlog"]+tr.Rejected["quota"] {
		t.Fatalf("arrival accounting off: %+v", tr)
	}
}

// TestWeightedFairness checks the WFQ dispatcher favours the heavier
// tenant when both queues are persistently backlogged: with equal demand
// and weights 3:1, the heavy tenant should finish clearly more work.
func TestWeightedFairness(t *testing.T) {
	mk := func(name string, weight float64) Tenant {
		return Tenant{
			Name: name, Rate: 2000, Weight: weight, QuotaMiB: 8, MaxJobs: 30, MaxQueue: 64,
			Mix: []MixEntry{{Workload: WorkloadGEMM, N: 256}},
		}
	}
	scn := &Scenario{
		Name: "wfq", Seed: 31, Workers: 1,
		Duration: 0,
		Topology: TopoSpec{Preset: "apu-ssd", StorageMiB: 512, DRAMMiB: 64},
		Tenants:  []Tenant{mk("heavy", 3), mk("light", 1)},
	}
	scn.applyDefaults()
	e, err := New(scn, RunOptions{Phantom: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Compare queueing delay: under WFQ the heavy tenant's admitted jobs
	// wait far less than the light tenant's.
	heavyWait := e.TenantRegistry("heavy").Flatten()
	lightWait := e.TenantRegistry("light").Flatten()
	hk, lk := histSum(heavyWait, "northup_serve_wait_ns"), histSum(lightWait, "northup_serve_wait_ns")
	if hk <= 0 || lk <= 0 {
		t.Fatalf("wait histograms empty: heavy %v light %v", hk, lk)
	}
	if hk >= lk {
		t.Fatalf("weight 3 tenant waited %v ns in aggregate, weight 1 waited %v — WFQ inverted", hk, lk)
	}
}

// histSum pulls a histogram's _sum series from a flattened registry.
func histSum(flat map[string]float64, name string) float64 {
	for k, v := range flat {
		if len(k) >= len(name)+4 && k[:len(name)] == name && containsSum(k) {
			return v
		}
	}
	return -1
}

func containsSum(k string) bool {
	for i := 0; i+4 <= len(k); i++ {
		if k[i:i+4] == "_sum" {
			return true
		}
	}
	return false
}
