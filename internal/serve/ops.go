package serve

import (
	"fmt"
	"strconv"

	"repro/internal/obs"
	"repro/internal/ops"
	"repro/internal/sim"
	"repro/internal/trace"
)

// This file wires the live operations plane (package ops) into the serve
// engine. The plane is built at engine construction — watches over the
// tenant registries and the shared runtime registry, one ops.Rule per
// (alert rule, tenant) pair — and driven by a virtual-time tick chain on
// the simulation engine's callback fast path. Ticks are read-only with
// respect to the job schedule: they sample counters, refresh windows and
// evaluate rules, but never touch queues, quotas or workers, so enabling
// the plane cannot change which job runs when.

// tenantWatch bundles one tenant's windowed handles for rule closures and
// the /tenants health snapshot.
type tenantWatch struct {
	arrivals, admitted, rejected ops.Handle
	completed, errors, sloViol   ops.Handle
	p50, p99, latCount           ops.Handle
	depth, inflight              ops.Handle
}

// initOps builds the plane, its watches, and its rules. Called from New
// when the scenario enables the ops plane; e.rec is already attached to
// the runtime (attribution reads it on rule fire).
func (e *Engine) initOps() error {
	scn := e.scn
	maxWin := scn.Ops.Window
	for i := range scn.Alerts {
		if w := scn.Alerts[i].SlowWindow; w > maxWin {
			maxWin = w
		}
	}
	e.plane = ops.NewPlane(ops.Config{
		Width:     scn.Ops.Window,
		Step:      scn.Ops.Step,
		MaxWindow: maxWin,
	})
	e.twatch = map[string]*tenantWatch{}
	for _, t := range e.tenants {
		e.twatch[t.spec.Name] = e.watchTenant(t)
	}
	e.watchRuntime()
	if err := e.addRules(); err != nil {
		return err
	}
	e.plane.OnFire = e.attributeFire
	return nil
}

// counterRead adapts an obs counter into a watch source.
func counterRead(c *obs.Counter) func() float64 {
	return func() float64 { return float64(c.Value()) }
}

// watchTenant registers the tenant's windowed series: admission-flow
// deltas, latency quantiles, and queue/footprint extremes.
func (e *Engine) watchTenant(t *tenantState) *tenantWatch {
	p := e.plane
	lbl := obs.L("tenant", t.spec.Name)
	w := &tenantWatch{}
	w.arrivals = p.WatchCounter("northup_window_arrivals",
		"arrivals over the trailing window", counterRead(t.arrivals), lbl)
	w.admitted = p.WatchCounter("northup_window_admitted",
		"admissions over the trailing window", counterRead(t.admitted), lbl)
	w.rejected = p.WatchCounter("northup_window_rejected",
		"rejections (all reasons) over the trailing window", func() float64 {
			return float64(t.rejQuota.Value() + t.rejBacklog.Value())
		}, lbl)
	w.completed = p.WatchCounter("northup_window_completed",
		"completions over the trailing window", counterRead(t.completed), lbl)
	w.errors = p.WatchCounter("northup_window_job_errors",
		"job failures over the trailing window", counterRead(t.jobErrors), lbl)
	w.sloViol = p.WatchCounter("northup_window_slo_violations",
		"SLO violations over the trailing window", counterRead(t.sloViol), lbl)
	w.p50 = p.WatchQuantile("northup_window_p50_latency_ns",
		"windowed p50 arrival-to-completion latency", t.latHist, 0.50, lbl)
	w.p99 = p.WatchQuantile("northup_window_p99_latency_ns",
		"windowed p99 arrival-to-completion latency", t.latHist, 0.99, lbl)
	w.latCount = p.WatchHistCount("northup_window_latency_count",
		"latency observations over the trailing window", t.latHist, lbl)
	w.depth = p.WatchGauge("northup_window_queue_depth",
		"max queue depth over the trailing window", func() float64 {
			return t.depthG.Value()
		}, lbl)
	w.inflight = p.WatchGauge("northup_window_inflight_bytes",
		"max staging footprint over the trailing window", func() float64 {
			return t.inflightG.Value()
		}, lbl)
	return w
}

// watchRuntime registers windowed views over the shared runtime registry:
// per-category busy time and per-node moved bytes — the node-level signals
// attribution reports are cross-checked against. Handles resolve through
// the registry's idempotent register path, so the runtime's own lazy
// registration later lands on the same instruments.
func (e *Engine) watchRuntime() {
	p := e.plane
	for _, c := range trace.Categories {
		lbl := obs.L("cat", c.String())
		cc := e.runReg.Counter("northup_busy_ns_total", "virtual busy time per execution category", lbl)
		p.WatchCounter("northup_window_busy_ns",
			"busy time per execution category over the trailing window", counterRead(cc), lbl)
	}
	for _, n := range e.tree.Nodes() {
		lbl := obs.L("node", strconv.Itoa(n.ID))
		mc := e.runReg.Counter("northup_moved_bytes_total", "bytes moved into each node", lbl)
		p.WatchCounter("northup_window_moved_bytes",
			"bytes moved into the node over the trailing window", counterRead(mc), lbl)
	}
}

// addRules expands the scenario's declarative alert rules into ops rules:
// a rule naming a tenant binds to it; a rule without one is instantiated
// for every tenant, subject per tenant.
func (e *Engine) addRules() error {
	for i := range e.scn.Alerts {
		r := &e.scn.Alerts[i]
		if r.Tenant != "" {
			if err := e.addRuleFor(r, r.Tenant); err != nil {
				return err
			}
			continue
		}
		for _, t := range e.tenants {
			if err := e.addRuleFor(r, t.spec.Name); err != nil {
				return err
			}
		}
	}
	return nil
}

// addRuleFor binds one alert rule to one tenant: the metric selector
// becomes a value closure over the tenant's windowed handles.
func (e *Engine) addRuleFor(r *AlertRule, tenant string) error {
	w := e.twatch[tenant]
	var spec *Tenant
	for _, t := range e.tenants {
		if t.spec.Name == tenant {
			spec = t.spec
		}
	}
	if w == nil || spec == nil {
		return fmt.Errorf("serve: alert rule %q names unknown tenant %q", r.Name, tenant)
	}
	var value func(width sim.Time) float64
	switch r.Metric {
	case MetricSLOBurn:
		budget := 1 - spec.SLOTarget
		value = func(width sim.Time) float64 {
			done := w.completed.Over(width)
			if done <= 0 {
				return 0
			}
			return (w.sloViol.Over(width) / done) / budget
		}
	case MetricRejectRatio:
		value = func(width sim.Time) float64 {
			arr := w.arrivals.Over(width)
			if arr <= 0 {
				return 0
			}
			return w.rejected.Over(width) / arr
		}
	case MetricErrorRatio:
		value = func(width sim.Time) float64 {
			errs := w.errors.Over(width)
			total := errs + w.completed.Over(width)
			if total <= 0 {
				return 0
			}
			return errs / total
		}
	case MetricP99:
		value = w.p99.Over
	case MetricQueueDepth:
		value = w.depth.Over
	default:
		return fmt.Errorf("serve: alert rule %q has unknown metric %q", r.Name, r.Metric)
	}
	e.ruleFast[r.Name] = r.FastWindow
	return e.plane.AddRule(ops.Rule{
		Name:      r.Name,
		Subject:   tenant,
		Severity:  r.Severity,
		Threshold: r.Threshold,
		Fast:      r.FastWindow,
		Slow:      r.SlowWindow,
		Value:     value,
	})
}

// attributeFire is the plane's OnFire hook: attach a top-K health report
// covering the rule's fast burn window, read from the trace recorder.
func (e *Engine) attributeFire(ev *ops.AlertEvent) {
	if e.rec == nil {
		return
	}
	end := sim.Time(ev.TNS)
	start := end - e.ruleFast[ev.Rule]
	if start < 0 {
		start = 0
	}
	ev.Attribution = ops.Attribute(e.rec.Events(), start, end, e.scn.Ops.TopK)
	if e.jny != nil {
		// With journeys on, carry the subject tenant's worst latency
		// exemplars so a page links straight to concrete job waterfalls.
		for _, t := range e.tenants {
			if t.spec.Name != ev.Subject {
				continue
			}
			for _, x := range t.latHist.TopExemplars(e.scn.Ops.TopK) {
				ev.Exemplars = append(ev.Exemplars, ops.Exemplar{TraceID: x.TraceID, ValueNS: x.Value})
			}
			break
		}
	}
}

// armOpsTicks schedules the plane's evaluation chain on the engine's
// inline-callback fast path: one tick at t=0 (the baseline sample), then
// every Step while arrivals or admitted work remain, plus a final tick at
// drain time issued by Run. Each tick syncs the runtime's scattered stat
// sources into the registry first, so windows sample current values.
func (e *Engine) armOpsTicks() {
	step := e.plane.Step()
	var tick func()
	tick = func() {
		e.rt.SyncMetrics()
		e.plane.Tick(e.eng.Now())
		if e.arrivalsOpen > 0 || e.outstanding > 0 {
			e.eng.After(step, tick)
		}
	}
	e.eng.At(0, tick)
}

// Plane returns the live operations plane, nil when the scenario does not
// enable it.
func (e *Engine) Plane() *ops.Plane { return e.plane }

// AlertEvents returns the deterministic alert timeline (nil without the
// ops plane).
func (e *Engine) AlertEvents() []ops.AlertEvent {
	if e.plane == nil {
		return nil
	}
	return e.plane.Events()
}

// WindowSeries returns every windowed series the plane recorded, in watch
// registration order (nil without the ops plane).
func (e *Engine) WindowSeries() []obs.Series {
	if e.plane == nil {
		return nil
	}
	return e.plane.Series()
}
