package serve

import (
	"strings"
	"testing"
)

// FuzzParseScenario holds ParseScenario to its contract: arbitrary input —
// malformed YAML, negative rates, zero quotas, unknown workload names,
// binary garbage — must produce an error or a scenario that passes
// Validate, and must never panic.
func FuzzParseScenario(f *testing.F) {
	f.Add([]byte(sampleYAML))
	f.Add([]byte(`{"name":"j","duration":"1s","tenants":[{"name":"t","rate":1,"quota_mib":1,"mix":[{"workload":"sort","n":10}]}]}`))
	f.Add([]byte("name: x\nduration: 1s\ntenants:\n  - name: a\n    rate: -5/s\n    quota_mib: 0\n    mix:\n      - workload: nope\n        n: 10\n"))
	f.Add([]byte("tenants:\n\t- bad tab\n"))
	f.Add([]byte("- just\n- a\n- list\n"))
	f.Add([]byte("key: [flow, style]\n"))
	f.Add([]byte("a:\n  b:\n    c: 'unterminated\n"))
	f.Add([]byte("name: \"esc\\q\"\n"))
	f.Add([]byte("\xff\xfe\x00 binary"))
	f.Add([]byte("{"))
	f.Add([]byte("name: x\nname: y\n"))
	f.Add([]byte("rate: 1e309\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		scn, err := ParseScenario(data)
		if err != nil {
			if scn != nil {
				t.Fatalf("error %v returned alongside a scenario", err)
			}
			return
		}
		// Whatever parses must already be valid and re-validate cleanly.
		if verr := scn.Validate(); verr != nil {
			t.Fatalf("parsed scenario fails Validate: %v", verr)
		}
		for _, tn := range scn.Tenants {
			if tn.Rate <= 0 || tn.QuotaMiB <= 0 {
				t.Fatalf("invalid tenant escaped validation: %+v", tn)
			}
			for _, m := range tn.Mix {
				switch m.Workload {
				case WorkloadGEMM, WorkloadSpMV, WorkloadHotSpot, WorkloadSort:
				default:
					t.Fatalf("unknown workload escaped validation: %q", m.Workload)
				}
			}
		}
		if strings.TrimSpace(scn.Name) == "" {
			t.Fatalf("unnamed scenario escaped validation")
		}
	})
}
