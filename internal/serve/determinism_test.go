package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/journey"
	"repro/internal/obs"
	"repro/internal/ops"
	"repro/internal/sim"
	"repro/internal/trace"
)

// detScenario is the determinism suite's 2-tenant workload: every job kind
// appears, both tenants stop on MaxJobs so runs are finite without a
// duration horizon.
func detScenario(seed int64) *Scenario {
	scn := &Scenario{
		Name:    "det",
		Seed:    seed,
		Workers: 2,
		Topology: TopoSpec{
			Preset:     "apu-ssd",
			StorageMiB: 256,
			DRAMMiB:    64,
		},
		Tenants: []Tenant{
			{Name: "a", Rate: 200, QuotaMiB: 16, MaxJobs: 6, Mix: []MixEntry{
				{Workload: WorkloadGEMM, N: 128},
				{Workload: WorkloadSort, N: 5000},
			}},
			{Name: "b", Rate: 100, Weight: 2, QuotaMiB: 8, MaxJobs: 5, Mix: []MixEntry{
				{Workload: WorkloadSpMV, N: 2000},
				{Workload: WorkloadHotSpot, N: 32, Iters: 2},
			}},
		},
	}
	scn.applyDefaults()
	return scn
}

// detRun executes a scenario and returns every observable surface: report
// JSON, per-tenant metrics JSON, merged metrics JSON and job records.
func detRun(t *testing.T, scn *Scenario, phantom bool) (report, tenantA, merged []byte, recs []JobRecord) {
	t.Helper()
	e, err := New(scn, RunOptions{Phantom: phantom})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	var repBuf, aBuf, mBuf bytes.Buffer
	if err := rep.WriteJSON(&repBuf); err != nil {
		t.Fatal(err)
	}
	if err := e.TenantRegistry("a").WriteJSON(&aBuf, nil); err != nil {
		t.Fatal(err)
	}
	if err := e.MergedRegistry().WriteJSON(&mBuf, nil); err != nil {
		t.Fatal(err)
	}
	return repBuf.Bytes(), aBuf.Bytes(), mBuf.Bytes(), e.Records()
}

// TestSameSeedByteIdentical is the DSL's core determinism promise as a
// testing/quick property: for any seed, running the same scenario twice
// produces byte-identical per-tenant metrics JSON, report JSON and job
// records.
func TestSameSeedByteIdentical(t *testing.T) {
	prop := func(seed int16) bool {
		scn := detScenario(int64(seed))
		rep1, ten1, mer1, recs1 := detRun(t, scn, true)
		rep2, ten2, mer2, recs2 := detRun(t, scn, true)
		return bytes.Equal(rep1, rep2) &&
			bytes.Equal(ten1, ten2) &&
			bytes.Equal(mer1, mer2) &&
			reflect.DeepEqual(recs1, recs2)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 5}); err != nil {
		t.Fatal(err)
	}
}

// TestPhantomMatchesFunctionalTiming checks serve inherits the runtime's
// phantom guarantee: a timing-only run and a functional run of the same
// scenario+seed agree on every job's arrival, start and completion time —
// only result hashes differ.
func TestPhantomMatchesFunctionalTiming(t *testing.T) {
	scn := detScenario(11)
	_, _, _, phRecs := detRun(t, scn, true)
	_, _, _, fnRecs := detRun(t, scn, false)
	if len(phRecs) != len(fnRecs) {
		t.Fatalf("record counts differ: phantom %d, functional %d", len(phRecs), len(fnRecs))
	}
	for i := range phRecs {
		p, f := phRecs[i], fnRecs[i]
		p.Hash, f.Hash = 0, 0
		if !reflect.DeepEqual(p, f) {
			t.Fatalf("record %d diverges:\nphantom    %+v\nfunctional %+v", i, p, f)
		}
	}
}

// TestFunctionalHashesDeterministic pins the bit-exactness of functional
// results: same scenario+seed reproduces identical per-job output hashes.
func TestFunctionalHashesDeterministic(t *testing.T) {
	scn := detScenario(3)
	_, _, _, r1 := detRun(t, scn, false)
	_, _, _, r2 := detRun(t, scn, false)
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("functional records diverge:\n%+v\n%+v", r1, r2)
	}
	hashes := 0
	for _, r := range r1 {
		if r.Hash != 0 {
			hashes++
		}
	}
	if hashes == 0 {
		t.Fatal("no functional job produced a result hash")
	}
}

// TestMergedMetricsOrderIndependent holds serve's multi-queue metric
// merging to the same law as Cluster.MergedMetrics: obs merge is
// associative and commutative, so merging the runtime registry and the
// tenant registries in any order yields identical output.
func TestMergedMetricsOrderIndependent(t *testing.T) {
	scn := detScenario(21)
	e, err := New(scn, RunOptions{Phantom: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Forward order: runtime registry, then tenants a, b.
	forward := e.MergedRegistry()
	// Reverse order: tenant b, tenant a, runtime registry last.
	reverse := obs.NewRegistry()
	reverse.Merge(e.TenantRegistry("b"))
	reverse.Merge(e.TenantRegistry("a"))
	reverse.Merge(e.Runtime().Metrics())
	var fw, rv bytes.Buffer
	if err := forward.WritePrometheus(&fw); err != nil {
		t.Fatal(err)
	}
	if err := reverse.WritePrometheus(&rv); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fw.Bytes(), rv.Bytes()) {
		t.Fatalf("merge order changed the merged registry:\n--- forward ---\n%s\n--- reverse ---\n%s", fw.String(), rv.String())
	}
}

// detOpsScenario extends the determinism workload with the ops plane: a
// 1ns SLO makes every completion of tenant a a violation, so the burn-rate
// rule is guaranteed to fire, and wide rule windows clip to the run start.
func detOpsScenario(seed int64) *Scenario {
	scn := detScenario(seed)
	scn.Name = "det-ops"
	scn.Tenants[0].SLO = 1
	scn.Ops = OpsSpec{Step: 10 * sim.Millisecond, Window: 50 * sim.Millisecond, TopK: 2}
	scn.Alerts = []AlertRule{{
		Name:       "a-burn",
		Tenant:     "a",
		Metric:     MetricSLOBurn,
		Threshold:  10,
		FastWindow: sim.Second,
		SlowWindow: 2 * sim.Second,
		Severity:   "page",
	}}
	scn.applyDefaults()
	return scn
}

// detOpsRun executes an ops-enabled scenario flat out and returns the
// engine plus its alert timeline and window series as JSON.
func detOpsRun(t *testing.T, scn *Scenario) (*Engine, []byte, []byte) {
	t.Helper()
	e, err := New(scn, RunOptions{Phantom: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	alerts, err := json.Marshal(e.AlertEvents())
	if err != nil {
		t.Fatal(err)
	}
	windows, err := json.Marshal(e.WindowSeries())
	if err != nil {
		t.Fatal(err)
	}
	return e, alerts, windows
}

// TestOpsOutputsByteIdentical extends the determinism promise to the ops
// plane: same scenario and seed reproduce the alert timeline and every
// windowed series byte for byte — and the timeline is not trivially empty.
func TestOpsOutputsByteIdentical(t *testing.T) {
	scn := detOpsScenario(17)
	e1, alerts1, windows1 := detOpsRun(t, scn)
	_, alerts2, windows2 := detOpsRun(t, scn)
	if !bytes.Equal(alerts1, alerts2) {
		t.Fatalf("alert timelines diverge:\n%s\n%s", alerts1, alerts2)
	}
	if !bytes.Equal(windows1, windows2) {
		t.Fatalf("window series diverge:\n%s\n%s", windows1, windows2)
	}
	evs := e1.AlertEvents()
	if len(evs) == 0 {
		t.Fatal("burn rule never fired: the scenario no longer exercises the timeline")
	}
	if evs[0].State != ops.StateFiring || evs[0].Subject != "a" {
		t.Fatalf("first transition = %+v, want tenant a firing", evs[0])
	}
}

// TestOpsAttributionReconciles holds a firing alert's attribution to the
// trace layer's own numbers: recomputing the top-K query over the recorded
// events for the same burn window must reproduce it bit for bit.
func TestOpsAttributionReconciles(t *testing.T) {
	scn := detOpsScenario(29)
	e, _, _ := detOpsRun(t, scn)
	var fired *ops.AlertEvent
	for i := range e.AlertEvents() {
		ev := &e.AlertEvents()[i]
		if ev.State == ops.StateFiring {
			fired = ev
			break
		}
	}
	if fired == nil {
		t.Fatal("no firing transition in the timeline")
	}
	if fired.Attribution == nil {
		t.Fatal("firing event has no attribution")
	}
	end := sim.Time(fired.TNS)
	start := end - scn.Alerts[0].FastWindow
	if start < 0 {
		start = 0
	}
	// The hook ran at the fire instant, when the recorder held only the
	// activity already finished: spans land in the ring at their completion
	// time. Reconstruct that prefix of the final stream before recomputing.
	var visible []trace.Event
	for _, ev := range e.TraceEvents() {
		if ev.End() <= end {
			visible = append(visible, ev)
		}
	}
	want := ops.Attribute(visible, start, end, scn.Ops.TopK)
	if !reflect.DeepEqual(fired.Attribution, want) {
		t.Fatalf("attribution does not reconcile with trace.Summarize:\ngot  %+v\nwant %+v", fired.Attribution, want)
	}
	if fired.Attribution.Events == 0 || len(fired.Attribution.Lanes) == 0 {
		t.Fatalf("attribution is empty: %+v", fired.Attribution)
	}
}

// TestPacedRunMatchesFlatRun checks that slicing the simulation through
// Live.RunPaced changes nothing: report, timeline and series match the
// flat Engine.Run byte for byte.
func TestPacedRunMatchesFlatRun(t *testing.T) {
	scn := detOpsScenario(5)
	_, flatAlerts, flatWindows := detOpsRun(t, scn)
	flatRep, _, _, _ := detRun(t, scn, true)

	e, err := New(scn, RunOptions{Phantom: true})
	if err != nil {
		t.Fatal(err)
	}
	l := NewLive(e)
	rep, err := l.RunPaced(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	var repBuf bytes.Buffer
	if err := rep.WriteJSON(&repBuf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(repBuf.Bytes(), flatRep) {
		t.Fatalf("paced report diverges from flat run:\n%s\n%s", repBuf.Bytes(), flatRep)
	}
	alerts, err := json.Marshal(e.AlertEvents())
	if err != nil {
		t.Fatal(err)
	}
	windows, err := json.Marshal(e.WindowSeries())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(alerts, flatAlerts) || !bytes.Equal(windows, flatWindows) {
		t.Fatal("paced ops outputs diverge from the flat run")
	}
}

// adminGet runs one in-process request against the live admin plane.
func adminGet(t *testing.T, h http.Handler, path string) []byte {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET %s = %d", path, rec.Code)
	}
	return rec.Body.Bytes()
}

// TestAdminEndpointsDeterministic runs the admin plane twice over the same
// scenario and asserts every endpoint's terminal snapshot is
// byte-identical; it also spot-checks the documents' content.
func TestAdminEndpointsDeterministic(t *testing.T) {
	scn := detOpsScenario(13)
	paths := []string{"/healthz", "/tenants", "/alerts", "/metrics"}
	snap := func() map[string][]byte {
		e, err := New(scn, RunOptions{Phantom: true})
		if err != nil {
			t.Fatal(err)
		}
		l := NewLive(e)
		if _, err := l.RunPaced(0, 0); err != nil {
			t.Fatal(err)
		}
		h := l.Handler()
		out := map[string][]byte{}
		for _, p := range paths {
			out[p] = adminGet(t, h, p)
		}
		return out
	}
	a, b := snap(), snap()
	for _, p := range paths {
		if !bytes.Equal(a[p], b[p]) {
			t.Errorf("%s snapshots diverge:\n%s\n%s", p, a[p], b[p])
		}
	}

	var h Health
	if err := json.Unmarshal(a["/healthz"], &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "done" || h.NowNS <= 0 {
		t.Fatalf("healthz = %+v, want done with a positive clock", h)
	}
	var td TenantsDoc
	if err := json.Unmarshal(a["/tenants"], &td); err != nil {
		t.Fatal(err)
	}
	if len(td.Tenants) != 2 || td.Tenants[0].Name != "a" {
		t.Fatalf("tenants doc = %+v", td)
	}
	if td.Tenants[0].Completed == 0 || td.Tenants[0].SLOViolations == 0 {
		t.Fatalf("tenant a health = %+v, want completions and violations", td.Tenants[0])
	}
	var ad AlertsDoc
	if err := json.Unmarshal(a["/alerts"], &ad); err != nil {
		t.Fatal(err)
	}
	if len(ad.Events) == 0 {
		t.Fatal("alerts doc has no transitions")
	}
}

// TestEngineStatsInReport checks the report's engine block: the
// schedule-determined fields are always present, and the wall-clock fields
// appear only when requested so deterministic outputs stay deterministic.
func TestEngineStatsInReport(t *testing.T) {
	scn := detScenario(9)
	e, err := New(scn, RunOptions{Phantom: true})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Engine == nil || rep.Engine.Events <= 0 {
		t.Fatalf("report engine stats = %+v, want event counts", rep.Engine)
	}
	if rep.Engine.EventsPerSec != 0 || rep.Engine.WallMS != 0 {
		t.Fatalf("wall-clock stats leaked into a deterministic report: %+v", rep.Engine)
	}

	e2, err := New(scn, RunOptions{Phantom: true, WallStats: true})
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := e2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Engine.Events != rep.Engine.Events || rep2.Engine.Procs != rep.Engine.Procs {
		t.Fatalf("schedule-determined stats changed with WallStats: %+v vs %+v", rep2.Engine, rep.Engine)
	}
	if rep2.Engine.EventsPerSec <= 0 || rep2.Engine.WallMS <= 0 {
		t.Fatalf("WallStats run missing wall-clock stats: %+v", rep2.Engine)
	}
}

// detJourneyScenario enables journeys at full sampling on the determinism
// workload, leaving everything else (name included) untouched so outputs
// can be byte-compared against the plain scenario.
func detJourneyScenario(seed int64) *Scenario {
	scn := detScenario(seed)
	scn.Journeys = JourneySpec{Enabled: true}
	scn.applyDefaults()
	return scn
}

// TestJourneysPreserveSchedule is the journey layer's core invariant: a run
// with journeys on executes the byte-identical job schedule — and report —
// of a run with them off. Journeys draw no random numbers and charge no
// virtual time, so the only outputs allowed to differ are the journey
// artifacts themselves (and the reject counters they gate).
func TestJourneysPreserveSchedule(t *testing.T) {
	repOff, _, _, recsOff := detRun(t, detScenario(31), true)
	repOn, _, _, recsOn := detRun(t, detJourneyScenario(31), true)
	if !bytes.Equal(repOff, repOn) {
		t.Fatalf("journeys changed the report:\n--- off ---\n%s\n--- on ---\n%s", repOff, repOn)
	}
	if !reflect.DeepEqual(recsOff, recsOn) {
		t.Fatal("journeys changed the job records")
	}
}

// TestJourneyPhaseSumsReconcile holds every journey to the accounting
// contract: phase totals partition [arrive, done) exactly (PhaseSum ==
// Latency bit-for-bit), journeys match the job records one-to-one at
// sample 1.0, and the per-category busy totals across all journeys
// reproduce the runtime's Breakdown — both sides are fed by the same
// charge point, so any drift is a bug.
func TestJourneyPhaseSumsReconcile(t *testing.T) {
	scn := detJourneyScenario(41)
	e, err := New(scn, RunOptions{Phantom: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	jobs := e.Journeys().Jobs()
	recs := e.Records()
	if len(jobs) == 0 || len(jobs) != len(recs) {
		t.Fatalf("journeys %d, records %d: sample 1.0 must cover every job", len(jobs), len(recs))
	}
	for i, j := range jobs {
		if got, want := j.PhaseSum(), int64(j.Latency()); got != want {
			t.Fatalf("job %s/%d: PhaseSum %d != Latency %d", j.Tenant, j.ID, got, want)
		}
		r := recs[i]
		if j.Tenant != r.Tenant || j.ID != r.ID ||
			int64(j.Arrive) != r.ArriveNS || int64(j.Start) != r.StartNS || int64(j.Done) != r.DoneNS {
			t.Fatalf("journey %d diverges from its record:\njourney %+v\nrecord  %+v", i, j, r)
		}
		segs, _ := j.Segments()
		var segSum int64
		for _, s := range segs {
			segSum += s.DurNS
		}
		if segSum != int64(j.Latency()) {
			t.Fatalf("job %s/%d: segments sum %d != latency %d", j.Tenant, j.ID, segSum, j.Latency())
		}
	}
	bd := e.Runtime().Breakdown()
	for _, cat := range trace.Categories {
		var sum sim.Time
		for _, j := range jobs {
			sum += j.CategoryBusy(cat)
		}
		if sum != bd.Busy(cat) {
			t.Fatalf("category %v: journeys sum %d, runtime breakdown %d", cat, sum, bd.Busy(cat))
		}
	}
}

// TestJourneyAnalyzerByteIdentical extends the determinism promise to every
// journey artifact: the tail report, the journey export, the Chrome trace
// (with per-job lanes) and a waterfall re-rendered from the parsed trace
// are all byte-identical across runs of the same scenario and seed.
func TestJourneyAnalyzerByteIdentical(t *testing.T) {
	run := func() (tail, export, chrome, wf []byte) {
		e, err := New(detJourneyScenario(51), RunOptions{Phantom: true, Trace: true})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.Run(); err != nil {
			t.Fatal(err)
		}
		tail = []byte(e.TailReport(0.99).String())
		export, err = json.Marshal(e.Journeys().Export())
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := trace.WriteChromeTrace(&buf, e.TraceEvents(), trace.ChromeExportOptions{
			NodeLabel:     e.TraceNodeLabel,
			DroppedEvents: e.TraceDropped(),
		}); err != nil {
			t.Fatal(err)
		}
		chrome = buf.Bytes()
		if err := trace.ValidateChromeTrace(chrome); err != nil {
			t.Fatalf("serve trace does not validate: %v", err)
		}
		parsed, err := trace.ParseChromeTrace(chrome)
		if err != nil {
			t.Fatal(err)
		}
		id := e.Journeys().Jobs()[0].TraceID
		s, err := journey.WaterfallFromEvents(parsed.Events, id)
		if err != nil {
			t.Fatal(err)
		}
		return tail, export, chrome, []byte(s)
	}
	t1, e1, c1, w1 := run()
	t2, e2, c2, w2 := run()
	if !bytes.Equal(t1, t2) {
		t.Fatalf("tail reports diverge:\n%s\n%s", t1, t2)
	}
	if !bytes.Equal(e1, e2) {
		t.Fatal("journey exports diverge")
	}
	if !bytes.Equal(c1, c2) {
		t.Fatal("chrome traces diverge")
	}
	if !bytes.Equal(w1, w2) {
		t.Fatalf("waterfalls diverge:\n%s\n%s", w1, w2)
	}
	if len(w1) == 0 || !bytes.Contains(t1, []byte("tail-latency decomposition")) {
		t.Fatalf("analyzer output is trivially empty:\n%s", t1)
	}
}

// TestJourneySamplingDeterministic checks the stride sampler: at sample 0.5
// every second admission per tenant is journeyed, the selection is
// reproducible, and — like any sampling rate — the schedule matches the
// journeys-off run exactly.
func TestJourneySamplingDeterministic(t *testing.T) {
	half := func() *Scenario {
		scn := detScenario(61)
		scn.Journeys = JourneySpec{Enabled: true, Sample: 0.5}
		scn.applyDefaults()
		return scn
	}
	e, err := New(half(), RunOptions{Phantom: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	jobs := e.Journeys().Jobs()
	recs := e.Records()
	if len(jobs) == 0 || len(jobs) >= len(recs) {
		t.Fatalf("sample 0.5 journeyed %d of %d jobs", len(jobs), len(recs))
	}
	for _, j := range jobs {
		if j.ID%2 != 1 {
			t.Fatalf("stride 0.5 should select odd tenant-local IDs, got %s/%d", j.Tenant, j.ID)
		}
	}
	_, _, _, base := detRun(t, detScenario(61), true)
	if !reflect.DeepEqual(recs, base) {
		t.Fatal("sampling changed the job schedule")
	}
	e2, err := New(half(), RunOptions{Phantom: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e2.Run(); err != nil {
		t.Fatal(err)
	}
	if len(e2.Journeys().Jobs()) != len(jobs) {
		t.Fatalf("sampled set diverges across runs: %d vs %d", len(e2.Journeys().Jobs()), len(jobs))
	}
}

// TestRejectReasonsAndInstants forces all three admission-rejection causes'
// machinery through a starved tenant: the reason-labelled counter totals
// must equal the admission-reject instants in the trace stream, and both
// surfaces appear only because journeys are on.
func TestRejectReasonsAndInstants(t *testing.T) {
	scn := &Scenario{
		Name:    "rej",
		Seed:    5,
		Workers: 1,
		Topology: TopoSpec{
			Preset:     "apu-ssd",
			StorageMiB: 256,
			DRAMMiB:    64,
		},
		Tenants: []Tenant{
			{Name: "r", Rate: 5000, QuotaMiB: 1, MaxJobs: 60, MaxQueue: 2, Mix: []MixEntry{
				{Workload: WorkloadGEMM, N: 1024},
				{Workload: WorkloadHotSpot, N: 32, Iters: 2},
			}},
		},
		Journeys: JourneySpec{Enabled: true},
	}
	scn.applyDefaults()
	e, err := New(scn, RunOptions{Phantom: true, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	var counted int64
	var promBuf bytes.Buffer
	if err := e.MergedRegistry().WritePrometheus(&promBuf); err != nil {
		t.Fatal(err)
	}
	for _, reason := range []string{rejectQuota, rejectBacklog} {
		marker := `northup_admission_reject_total{reason="` + reason + `",tenant="r"}`
		if !bytes.Contains(promBuf.Bytes(), []byte(marker)) {
			t.Fatalf("merged metrics missing %s:\n%s", marker, promBuf.String())
		}
	}
	for _, t2 := range e.tenants {
		for _, c := range t2.rejReason {
			counted += c.Value()
		}
	}
	instants := 0
	for _, ev := range e.TraceEvents() {
		if ev.Kind == trace.KindInstant && ev.Lane.Track == admissionTrack {
			instants++
		}
	}
	if counted == 0 || int64(instants) != counted {
		t.Fatalf("reject accounting: counters %d, trace instants %d", counted, instants)
	}
}

// TestFiringAlertsCarryExemplars runs the ops scenario with journeys on:
// every firing transition must carry at least one latency exemplar, and
// each exemplar's trace ID must resolve to a recorded journey.
func TestFiringAlertsCarryExemplars(t *testing.T) {
	scn := detOpsScenario(17)
	scn.Journeys = JourneySpec{Enabled: true}
	scn.applyDefaults()
	e, err := New(scn, RunOptions{Phantom: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	fired := 0
	for _, ev := range e.AlertEvents() {
		if ev.State != ops.StateFiring {
			continue
		}
		fired++
		if len(ev.Exemplars) == 0 {
			t.Fatalf("firing event %s carries no exemplars", ev.Rule)
		}
		for _, x := range ev.Exemplars {
			j := e.Journeys().Find(x.TraceID)
			if j == nil {
				t.Fatalf("exemplar %q does not resolve to a journey", x.TraceID)
			}
			if int64(j.Latency()) != x.ValueNS {
				t.Fatalf("exemplar %q value %d != journey latency %d", x.TraceID, x.ValueNS, j.Latency())
			}
		}
	}
	if fired == 0 {
		t.Fatal("scenario fired no alerts")
	}
}
