package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/obs"
	"repro/internal/ops"
	"repro/internal/sim"
	"repro/internal/trace"
)

// detScenario is the determinism suite's 2-tenant workload: every job kind
// appears, both tenants stop on MaxJobs so runs are finite without a
// duration horizon.
func detScenario(seed int64) *Scenario {
	scn := &Scenario{
		Name:    "det",
		Seed:    seed,
		Workers: 2,
		Topology: TopoSpec{
			Preset:     "apu-ssd",
			StorageMiB: 256,
			DRAMMiB:    64,
		},
		Tenants: []Tenant{
			{Name: "a", Rate: 200, QuotaMiB: 16, MaxJobs: 6, Mix: []MixEntry{
				{Workload: WorkloadGEMM, N: 128},
				{Workload: WorkloadSort, N: 5000},
			}},
			{Name: "b", Rate: 100, Weight: 2, QuotaMiB: 8, MaxJobs: 5, Mix: []MixEntry{
				{Workload: WorkloadSpMV, N: 2000},
				{Workload: WorkloadHotSpot, N: 32, Iters: 2},
			}},
		},
	}
	scn.applyDefaults()
	return scn
}

// detRun executes a scenario and returns every observable surface: report
// JSON, per-tenant metrics JSON, merged metrics JSON and job records.
func detRun(t *testing.T, scn *Scenario, phantom bool) (report, tenantA, merged []byte, recs []JobRecord) {
	t.Helper()
	e, err := New(scn, RunOptions{Phantom: phantom})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	var repBuf, aBuf, mBuf bytes.Buffer
	if err := rep.WriteJSON(&repBuf); err != nil {
		t.Fatal(err)
	}
	if err := e.TenantRegistry("a").WriteJSON(&aBuf, nil); err != nil {
		t.Fatal(err)
	}
	if err := e.MergedRegistry().WriteJSON(&mBuf, nil); err != nil {
		t.Fatal(err)
	}
	return repBuf.Bytes(), aBuf.Bytes(), mBuf.Bytes(), e.Records()
}

// TestSameSeedByteIdentical is the DSL's core determinism promise as a
// testing/quick property: for any seed, running the same scenario twice
// produces byte-identical per-tenant metrics JSON, report JSON and job
// records.
func TestSameSeedByteIdentical(t *testing.T) {
	prop := func(seed int16) bool {
		scn := detScenario(int64(seed))
		rep1, ten1, mer1, recs1 := detRun(t, scn, true)
		rep2, ten2, mer2, recs2 := detRun(t, scn, true)
		return bytes.Equal(rep1, rep2) &&
			bytes.Equal(ten1, ten2) &&
			bytes.Equal(mer1, mer2) &&
			reflect.DeepEqual(recs1, recs2)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 5}); err != nil {
		t.Fatal(err)
	}
}

// TestPhantomMatchesFunctionalTiming checks serve inherits the runtime's
// phantom guarantee: a timing-only run and a functional run of the same
// scenario+seed agree on every job's arrival, start and completion time —
// only result hashes differ.
func TestPhantomMatchesFunctionalTiming(t *testing.T) {
	scn := detScenario(11)
	_, _, _, phRecs := detRun(t, scn, true)
	_, _, _, fnRecs := detRun(t, scn, false)
	if len(phRecs) != len(fnRecs) {
		t.Fatalf("record counts differ: phantom %d, functional %d", len(phRecs), len(fnRecs))
	}
	for i := range phRecs {
		p, f := phRecs[i], fnRecs[i]
		p.Hash, f.Hash = 0, 0
		if !reflect.DeepEqual(p, f) {
			t.Fatalf("record %d diverges:\nphantom    %+v\nfunctional %+v", i, p, f)
		}
	}
}

// TestFunctionalHashesDeterministic pins the bit-exactness of functional
// results: same scenario+seed reproduces identical per-job output hashes.
func TestFunctionalHashesDeterministic(t *testing.T) {
	scn := detScenario(3)
	_, _, _, r1 := detRun(t, scn, false)
	_, _, _, r2 := detRun(t, scn, false)
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("functional records diverge:\n%+v\n%+v", r1, r2)
	}
	hashes := 0
	for _, r := range r1 {
		if r.Hash != 0 {
			hashes++
		}
	}
	if hashes == 0 {
		t.Fatal("no functional job produced a result hash")
	}
}

// TestMergedMetricsOrderIndependent holds serve's multi-queue metric
// merging to the same law as Cluster.MergedMetrics: obs merge is
// associative and commutative, so merging the runtime registry and the
// tenant registries in any order yields identical output.
func TestMergedMetricsOrderIndependent(t *testing.T) {
	scn := detScenario(21)
	e, err := New(scn, RunOptions{Phantom: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Forward order: runtime registry, then tenants a, b.
	forward := e.MergedRegistry()
	// Reverse order: tenant b, tenant a, runtime registry last.
	reverse := obs.NewRegistry()
	reverse.Merge(e.TenantRegistry("b"))
	reverse.Merge(e.TenantRegistry("a"))
	reverse.Merge(e.Runtime().Metrics())
	var fw, rv bytes.Buffer
	if err := forward.WritePrometheus(&fw); err != nil {
		t.Fatal(err)
	}
	if err := reverse.WritePrometheus(&rv); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fw.Bytes(), rv.Bytes()) {
		t.Fatalf("merge order changed the merged registry:\n--- forward ---\n%s\n--- reverse ---\n%s", fw.String(), rv.String())
	}
}

// detOpsScenario extends the determinism workload with the ops plane: a
// 1ns SLO makes every completion of tenant a a violation, so the burn-rate
// rule is guaranteed to fire, and wide rule windows clip to the run start.
func detOpsScenario(seed int64) *Scenario {
	scn := detScenario(seed)
	scn.Name = "det-ops"
	scn.Tenants[0].SLO = 1
	scn.Ops = OpsSpec{Step: 10 * sim.Millisecond, Window: 50 * sim.Millisecond, TopK: 2}
	scn.Alerts = []AlertRule{{
		Name:       "a-burn",
		Tenant:     "a",
		Metric:     MetricSLOBurn,
		Threshold:  10,
		FastWindow: sim.Second,
		SlowWindow: 2 * sim.Second,
		Severity:   "page",
	}}
	scn.applyDefaults()
	return scn
}

// detOpsRun executes an ops-enabled scenario flat out and returns the
// engine plus its alert timeline and window series as JSON.
func detOpsRun(t *testing.T, scn *Scenario) (*Engine, []byte, []byte) {
	t.Helper()
	e, err := New(scn, RunOptions{Phantom: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	alerts, err := json.Marshal(e.AlertEvents())
	if err != nil {
		t.Fatal(err)
	}
	windows, err := json.Marshal(e.WindowSeries())
	if err != nil {
		t.Fatal(err)
	}
	return e, alerts, windows
}

// TestOpsOutputsByteIdentical extends the determinism promise to the ops
// plane: same scenario and seed reproduce the alert timeline and every
// windowed series byte for byte — and the timeline is not trivially empty.
func TestOpsOutputsByteIdentical(t *testing.T) {
	scn := detOpsScenario(17)
	e1, alerts1, windows1 := detOpsRun(t, scn)
	_, alerts2, windows2 := detOpsRun(t, scn)
	if !bytes.Equal(alerts1, alerts2) {
		t.Fatalf("alert timelines diverge:\n%s\n%s", alerts1, alerts2)
	}
	if !bytes.Equal(windows1, windows2) {
		t.Fatalf("window series diverge:\n%s\n%s", windows1, windows2)
	}
	evs := e1.AlertEvents()
	if len(evs) == 0 {
		t.Fatal("burn rule never fired: the scenario no longer exercises the timeline")
	}
	if evs[0].State != ops.StateFiring || evs[0].Subject != "a" {
		t.Fatalf("first transition = %+v, want tenant a firing", evs[0])
	}
}

// TestOpsAttributionReconciles holds a firing alert's attribution to the
// trace layer's own numbers: recomputing the top-K query over the recorded
// events for the same burn window must reproduce it bit for bit.
func TestOpsAttributionReconciles(t *testing.T) {
	scn := detOpsScenario(29)
	e, _, _ := detOpsRun(t, scn)
	var fired *ops.AlertEvent
	for i := range e.AlertEvents() {
		ev := &e.AlertEvents()[i]
		if ev.State == ops.StateFiring {
			fired = ev
			break
		}
	}
	if fired == nil {
		t.Fatal("no firing transition in the timeline")
	}
	if fired.Attribution == nil {
		t.Fatal("firing event has no attribution")
	}
	end := sim.Time(fired.TNS)
	start := end - scn.Alerts[0].FastWindow
	if start < 0 {
		start = 0
	}
	// The hook ran at the fire instant, when the recorder held only the
	// activity already finished: spans land in the ring at their completion
	// time. Reconstruct that prefix of the final stream before recomputing.
	var visible []trace.Event
	for _, ev := range e.TraceEvents() {
		if ev.End() <= end {
			visible = append(visible, ev)
		}
	}
	want := ops.Attribute(visible, start, end, scn.Ops.TopK)
	if !reflect.DeepEqual(fired.Attribution, want) {
		t.Fatalf("attribution does not reconcile with trace.Summarize:\ngot  %+v\nwant %+v", fired.Attribution, want)
	}
	if fired.Attribution.Events == 0 || len(fired.Attribution.Lanes) == 0 {
		t.Fatalf("attribution is empty: %+v", fired.Attribution)
	}
}

// TestPacedRunMatchesFlatRun checks that slicing the simulation through
// Live.RunPaced changes nothing: report, timeline and series match the
// flat Engine.Run byte for byte.
func TestPacedRunMatchesFlatRun(t *testing.T) {
	scn := detOpsScenario(5)
	_, flatAlerts, flatWindows := detOpsRun(t, scn)
	flatRep, _, _, _ := detRun(t, scn, true)

	e, err := New(scn, RunOptions{Phantom: true})
	if err != nil {
		t.Fatal(err)
	}
	l := NewLive(e)
	rep, err := l.RunPaced(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	var repBuf bytes.Buffer
	if err := rep.WriteJSON(&repBuf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(repBuf.Bytes(), flatRep) {
		t.Fatalf("paced report diverges from flat run:\n%s\n%s", repBuf.Bytes(), flatRep)
	}
	alerts, err := json.Marshal(e.AlertEvents())
	if err != nil {
		t.Fatal(err)
	}
	windows, err := json.Marshal(e.WindowSeries())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(alerts, flatAlerts) || !bytes.Equal(windows, flatWindows) {
		t.Fatal("paced ops outputs diverge from the flat run")
	}
}

// adminGet runs one in-process request against the live admin plane.
func adminGet(t *testing.T, h http.Handler, path string) []byte {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET %s = %d", path, rec.Code)
	}
	return rec.Body.Bytes()
}

// TestAdminEndpointsDeterministic runs the admin plane twice over the same
// scenario and asserts every endpoint's terminal snapshot is
// byte-identical; it also spot-checks the documents' content.
func TestAdminEndpointsDeterministic(t *testing.T) {
	scn := detOpsScenario(13)
	paths := []string{"/healthz", "/tenants", "/alerts", "/metrics"}
	snap := func() map[string][]byte {
		e, err := New(scn, RunOptions{Phantom: true})
		if err != nil {
			t.Fatal(err)
		}
		l := NewLive(e)
		if _, err := l.RunPaced(0, 0); err != nil {
			t.Fatal(err)
		}
		h := l.Handler()
		out := map[string][]byte{}
		for _, p := range paths {
			out[p] = adminGet(t, h, p)
		}
		return out
	}
	a, b := snap(), snap()
	for _, p := range paths {
		if !bytes.Equal(a[p], b[p]) {
			t.Errorf("%s snapshots diverge:\n%s\n%s", p, a[p], b[p])
		}
	}

	var h Health
	if err := json.Unmarshal(a["/healthz"], &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "done" || h.NowNS <= 0 {
		t.Fatalf("healthz = %+v, want done with a positive clock", h)
	}
	var td TenantsDoc
	if err := json.Unmarshal(a["/tenants"], &td); err != nil {
		t.Fatal(err)
	}
	if len(td.Tenants) != 2 || td.Tenants[0].Name != "a" {
		t.Fatalf("tenants doc = %+v", td)
	}
	if td.Tenants[0].Completed == 0 || td.Tenants[0].SLOViolations == 0 {
		t.Fatalf("tenant a health = %+v, want completions and violations", td.Tenants[0])
	}
	var ad AlertsDoc
	if err := json.Unmarshal(a["/alerts"], &ad); err != nil {
		t.Fatal(err)
	}
	if len(ad.Events) == 0 {
		t.Fatal("alerts doc has no transitions")
	}
}

// TestEngineStatsInReport checks the report's engine block: the
// schedule-determined fields are always present, and the wall-clock fields
// appear only when requested so deterministic outputs stay deterministic.
func TestEngineStatsInReport(t *testing.T) {
	scn := detScenario(9)
	e, err := New(scn, RunOptions{Phantom: true})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Engine == nil || rep.Engine.Events <= 0 {
		t.Fatalf("report engine stats = %+v, want event counts", rep.Engine)
	}
	if rep.Engine.EventsPerSec != 0 || rep.Engine.WallMS != 0 {
		t.Fatalf("wall-clock stats leaked into a deterministic report: %+v", rep.Engine)
	}

	e2, err := New(scn, RunOptions{Phantom: true, WallStats: true})
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := e2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Engine.Events != rep.Engine.Events || rep2.Engine.Procs != rep.Engine.Procs {
		t.Fatalf("schedule-determined stats changed with WallStats: %+v vs %+v", rep2.Engine, rep.Engine)
	}
	if rep2.Engine.EventsPerSec <= 0 || rep2.Engine.WallMS <= 0 {
		t.Fatalf("WallStats run missing wall-clock stats: %+v", rep2.Engine)
	}
}
