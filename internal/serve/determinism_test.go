package serve

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/obs"
)

// detScenario is the determinism suite's 2-tenant workload: every job kind
// appears, both tenants stop on MaxJobs so runs are finite without a
// duration horizon.
func detScenario(seed int64) *Scenario {
	scn := &Scenario{
		Name:    "det",
		Seed:    seed,
		Workers: 2,
		Topology: TopoSpec{
			Preset:     "apu-ssd",
			StorageMiB: 256,
			DRAMMiB:    64,
		},
		Tenants: []Tenant{
			{Name: "a", Rate: 200, QuotaMiB: 16, MaxJobs: 6, Mix: []MixEntry{
				{Workload: WorkloadGEMM, N: 128},
				{Workload: WorkloadSort, N: 5000},
			}},
			{Name: "b", Rate: 100, Weight: 2, QuotaMiB: 8, MaxJobs: 5, Mix: []MixEntry{
				{Workload: WorkloadSpMV, N: 2000},
				{Workload: WorkloadHotSpot, N: 32, Iters: 2},
			}},
		},
	}
	scn.applyDefaults()
	return scn
}

// detRun executes a scenario and returns every observable surface: report
// JSON, per-tenant metrics JSON, merged metrics JSON and job records.
func detRun(t *testing.T, scn *Scenario, phantom bool) (report, tenantA, merged []byte, recs []JobRecord) {
	t.Helper()
	e, err := New(scn, RunOptions{Phantom: phantom})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	var repBuf, aBuf, mBuf bytes.Buffer
	if err := rep.WriteJSON(&repBuf); err != nil {
		t.Fatal(err)
	}
	if err := e.TenantRegistry("a").WriteJSON(&aBuf, nil); err != nil {
		t.Fatal(err)
	}
	if err := e.MergedRegistry().WriteJSON(&mBuf, nil); err != nil {
		t.Fatal(err)
	}
	return repBuf.Bytes(), aBuf.Bytes(), mBuf.Bytes(), e.Records()
}

// TestSameSeedByteIdentical is the DSL's core determinism promise as a
// testing/quick property: for any seed, running the same scenario twice
// produces byte-identical per-tenant metrics JSON, report JSON and job
// records.
func TestSameSeedByteIdentical(t *testing.T) {
	prop := func(seed int16) bool {
		scn := detScenario(int64(seed))
		rep1, ten1, mer1, recs1 := detRun(t, scn, true)
		rep2, ten2, mer2, recs2 := detRun(t, scn, true)
		return bytes.Equal(rep1, rep2) &&
			bytes.Equal(ten1, ten2) &&
			bytes.Equal(mer1, mer2) &&
			reflect.DeepEqual(recs1, recs2)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 5}); err != nil {
		t.Fatal(err)
	}
}

// TestPhantomMatchesFunctionalTiming checks serve inherits the runtime's
// phantom guarantee: a timing-only run and a functional run of the same
// scenario+seed agree on every job's arrival, start and completion time —
// only result hashes differ.
func TestPhantomMatchesFunctionalTiming(t *testing.T) {
	scn := detScenario(11)
	_, _, _, phRecs := detRun(t, scn, true)
	_, _, _, fnRecs := detRun(t, scn, false)
	if len(phRecs) != len(fnRecs) {
		t.Fatalf("record counts differ: phantom %d, functional %d", len(phRecs), len(fnRecs))
	}
	for i := range phRecs {
		p, f := phRecs[i], fnRecs[i]
		p.Hash, f.Hash = 0, 0
		if !reflect.DeepEqual(p, f) {
			t.Fatalf("record %d diverges:\nphantom    %+v\nfunctional %+v", i, p, f)
		}
	}
}

// TestFunctionalHashesDeterministic pins the bit-exactness of functional
// results: same scenario+seed reproduces identical per-job output hashes.
func TestFunctionalHashesDeterministic(t *testing.T) {
	scn := detScenario(3)
	_, _, _, r1 := detRun(t, scn, false)
	_, _, _, r2 := detRun(t, scn, false)
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("functional records diverge:\n%+v\n%+v", r1, r2)
	}
	hashes := 0
	for _, r := range r1 {
		if r.Hash != 0 {
			hashes++
		}
	}
	if hashes == 0 {
		t.Fatal("no functional job produced a result hash")
	}
}

// TestMergedMetricsOrderIndependent holds serve's multi-queue metric
// merging to the same law as Cluster.MergedMetrics: obs merge is
// associative and commutative, so merging the runtime registry and the
// tenant registries in any order yields identical output.
func TestMergedMetricsOrderIndependent(t *testing.T) {
	scn := detScenario(21)
	e, err := New(scn, RunOptions{Phantom: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Forward order: runtime registry, then tenants a, b.
	forward := e.MergedRegistry()
	// Reverse order: tenant b, tenant a, runtime registry last.
	reverse := obs.NewRegistry()
	reverse.Merge(e.TenantRegistry("b"))
	reverse.Merge(e.TenantRegistry("a"))
	reverse.Merge(e.Runtime().Metrics())
	var fw, rv bytes.Buffer
	if err := forward.WritePrometheus(&fw); err != nil {
		t.Fatal(err)
	}
	if err := reverse.WritePrometheus(&rv); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fw.Bytes(), rv.Bytes()) {
		t.Fatalf("merge order changed the merged registry:\n--- forward ---\n%s\n--- reverse ---\n%s", fw.String(), rv.String())
	}
}
