package serve

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/sim"
)

// ParseScenario decodes a scenario written in the DSL. The front end is
// chosen by sniffing: documents whose first non-space byte is '{' are JSON,
// everything else is the YAML subset (yaml.go). Both decode to the same
// generic tree, which is then typed strictly against the schema — unknown
// keys, wrong shapes, malformed rates/durations, and semantic violations
// (negative rates, zero quotas, unknown workload names, ...) all return
// errors. ParseScenario never panics; the fuzz tier holds it to that.
func ParseScenario(data []byte) (*Scenario, error) {
	trimmed := strings.TrimLeft(string(data), " \t\r\n")
	if trimmed == "" {
		return nil, fmt.Errorf("serve: empty scenario document")
	}
	var (
		tree any
		err  error
	)
	if trimmed[0] == '{' {
		dec := json.NewDecoder(strings.NewReader(trimmed))
		if err = dec.Decode(&tree); err != nil {
			return nil, fmt.Errorf("serve: bad JSON scenario: %w", err)
		}
		if dec.More() {
			return nil, fmt.Errorf("serve: trailing data after JSON scenario")
		}
	} else {
		if tree, err = decodeYAML(data); err != nil {
			return nil, fmt.Errorf("serve: bad scenario: %w", err)
		}
	}
	scn, err := scenarioFromTree(tree)
	if err != nil {
		return nil, err
	}
	scn.applyDefaults()
	if err := scn.Validate(); err != nil {
		return nil, err
	}
	return scn, nil
}

// field accessors over the generic tree -------------------------------------

// fields wraps one decoded mapping and tracks which keys the schema read,
// so leftovers can be rejected by name.
type fields struct {
	path string
	m    map[string]any
	used map[string]bool
}

func asFields(path string, v any) (*fields, error) {
	m, ok := v.(map[string]any)
	if !ok {
		return nil, fmt.Errorf("serve: %s: expected a mapping, got %s", path, treeKind(v))
	}
	return &fields{path: path, m: m, used: map[string]bool{}}, nil
}

func (f *fields) get(key string) (any, bool) {
	v, ok := f.m[key]
	if ok {
		f.used[key] = true
	}
	return v, ok
}

// finish errors on any key the schema never consumed.
func (f *fields) finish() error {
	var unknown []string
	for k := range f.m {
		if !f.used[k] {
			unknown = append(unknown, k)
		}
	}
	if len(unknown) == 0 {
		return nil
	}
	sort.Strings(unknown)
	return fmt.Errorf("serve: %s: unknown key %q", f.path, unknown[0])
}

func treeKind(v any) string {
	switch v.(type) {
	case nil:
		return "nothing"
	case map[string]any:
		return "a mapping"
	case []any:
		return "a list"
	case string:
		return "a string"
	case float64, bool:
		return "a scalar"
	default:
		return fmt.Sprintf("%T", v)
	}
}

// scalarString renders a scalar leaf (string from YAML; string, number or
// bool from JSON) as its string form for uniform re-parsing.
func scalarString(path string, v any) (string, error) {
	switch x := v.(type) {
	case string:
		return x, nil
	case float64:
		return strconv.FormatFloat(x, 'g', -1, 64), nil
	case bool:
		return strconv.FormatBool(x), nil
	default:
		return "", fmt.Errorf("serve: %s: expected a scalar, got %s", path, treeKind(v))
	}
}

func (f *fields) str(key string) (string, bool, error) {
	v, ok := f.get(key)
	if !ok {
		return "", false, nil
	}
	s, err := scalarString(f.path+"."+key, v)
	return s, err == nil, err
}

func (f *fields) intField(key string) (int64, bool, error) {
	s, ok, err := f.str(key)
	if err != nil || !ok {
		return 0, ok, err
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		// JSON renders 3.0 as "3"; anything fractional genuinely fails.
		fl, ferr := strconv.ParseFloat(s, 64)
		if ferr != nil || fl != math.Trunc(fl) || math.Abs(fl) > math.MaxInt64/2 {
			return 0, true, fmt.Errorf("serve: %s.%s: %q is not an integer", f.path, key, s)
		}
		n = int64(fl)
	}
	return n, true, nil
}

func (f *fields) floatField(key string) (float64, bool, error) {
	s, ok, err := f.str(key)
	if err != nil || !ok {
		return 0, ok, err
	}
	fl, err := strconv.ParseFloat(s, 64)
	if err != nil || math.IsNaN(fl) || math.IsInf(fl, 0) {
		return 0, true, fmt.Errorf("serve: %s.%s: %q is not a number", f.path, key, s)
	}
	return fl, true, nil
}

// rateField parses "120/s", "0.5/s" or a bare number (jobs per second).
func (f *fields) rateField(key string) (float64, bool, error) {
	s, ok, err := f.str(key)
	if err != nil || !ok {
		return 0, ok, err
	}
	num := strings.TrimSuffix(strings.TrimSpace(s), "/s")
	fl, perr := strconv.ParseFloat(strings.TrimSpace(num), 64)
	if perr != nil || math.IsNaN(fl) || math.IsInf(fl, 0) {
		return 0, true, fmt.Errorf("serve: %s.%s: %q is not a rate (want e.g. \"10/s\")", f.path, key, s)
	}
	return fl, true, nil
}

// durationField parses Go duration syntax ("250ms", "2s") or a bare number
// of seconds, into simulated nanoseconds.
func (f *fields) durationField(key string) (sim.Time, bool, error) {
	s, ok, err := f.str(key)
	if err != nil || !ok {
		return 0, ok, err
	}
	s = strings.TrimSpace(s)
	if d, perr := time.ParseDuration(s); perr == nil {
		return sim.Time(d.Nanoseconds()), true, nil
	}
	if fl, perr := strconv.ParseFloat(s, 64); perr == nil && !math.IsNaN(fl) && !math.IsInf(fl, 0) &&
		math.Abs(fl) < math.MaxInt64/float64(sim.Second) {
		return sim.Time(fl * float64(sim.Second)), true, nil
	}
	return 0, true, fmt.Errorf("serve: %s.%s: %q is not a duration (want e.g. \"250ms\" or seconds)", f.path, key, s)
}

// floatOrDurationField parses either a plain number or Go duration syntax
// (rendered as nanoseconds). Alert thresholds use it so a p99 rule can say
// threshold: 20ms while a burn-rate rule says threshold: 14.4.
func (f *fields) floatOrDurationField(key string) (float64, bool, error) {
	s, ok, err := f.str(key)
	if err != nil || !ok {
		return 0, ok, err
	}
	s = strings.TrimSpace(s)
	if fl, perr := strconv.ParseFloat(s, 64); perr == nil && !math.IsNaN(fl) && !math.IsInf(fl, 0) {
		return fl, true, nil
	}
	if d, perr := time.ParseDuration(s); perr == nil {
		return float64(d.Nanoseconds()), true, nil
	}
	return 0, true, fmt.Errorf("serve: %s.%s: %q is not a number or duration", f.path, key, s)
}

func (f *fields) boolField(key string) (bool, bool, error) {
	s, ok, err := f.str(key)
	if err != nil || !ok {
		return false, ok, err
	}
	b, perr := strconv.ParseBool(strings.TrimSpace(s))
	if perr != nil {
		return false, true, fmt.Errorf("serve: %s.%s: %q is not a boolean", f.path, key, s)
	}
	return b, true, nil
}

func (f *fields) list(key string) ([]any, bool, error) {
	v, ok := f.get(key)
	if !ok {
		return nil, false, nil
	}
	l, isList := v.([]any)
	if !isList {
		return nil, true, fmt.Errorf("serve: %s.%s: expected a list, got %s", f.path, key, treeKind(v))
	}
	return l, true, nil
}

// schema --------------------------------------------------------------------

func scenarioFromTree(tree any) (*Scenario, error) {
	f, err := asFields("scenario", tree)
	if err != nil {
		return nil, err
	}
	var scn Scenario
	if scn.Name, _, err = f.str("name"); err != nil {
		return nil, err
	}
	if seed, _, err := f.intField("seed"); err != nil {
		return nil, err
	} else {
		scn.Seed = seed
	}
	if d, _, err := f.durationField("duration"); err != nil {
		return nil, err
	} else {
		scn.Duration = d
	}
	if w, ok, err := f.intField("workers"); err != nil {
		return nil, err
	} else if ok {
		if w < math.MinInt32 || w > math.MaxInt32 {
			return nil, fmt.Errorf("serve: scenario.workers: %d out of range", w)
		}
		scn.Workers = int(w)
	}
	if tv, ok := f.get("topology"); ok {
		if scn.Topology, err = topoFromTree(tv); err != nil {
			return nil, err
		}
	}
	tenants, ok, err := f.list("tenants")
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("serve: scenario has no tenants list")
	}
	for i, tv := range tenants {
		t, err := tenantFromTree(fmt.Sprintf("tenants[%d]", i), tv)
		if err != nil {
			return nil, err
		}
		scn.Tenants = append(scn.Tenants, t)
	}
	if ov, ok := f.get("ops"); ok {
		if scn.Ops, err = opsFromTree(ov); err != nil {
			return nil, err
		}
	}
	if jv, ok := f.get("journeys"); ok {
		if scn.Journeys, err = journeysFromTree(jv); err != nil {
			return nil, err
		}
	}
	alerts, ok, err := f.list("alerts")
	if err != nil {
		return nil, err
	}
	if ok {
		for i, av := range alerts {
			r, err := alertFromTree(fmt.Sprintf("alerts[%d]", i), av)
			if err != nil {
				return nil, err
			}
			scn.Alerts = append(scn.Alerts, r)
		}
	}
	if err := f.finish(); err != nil {
		return nil, err
	}
	return &scn, nil
}

func opsFromTree(v any) (OpsSpec, error) {
	var spec OpsSpec
	f, err := asFields("ops", v)
	if err != nil {
		return spec, err
	}
	if spec.Window, _, err = f.durationField("window"); err != nil {
		return spec, err
	}
	if spec.Step, _, err = f.durationField("step"); err != nil {
		return spec, err
	}
	if k, ok, err := f.intField("top_k"); err != nil {
		return spec, err
	} else if ok {
		if k < 0 || k > math.MaxInt32 {
			return spec, fmt.Errorf("serve: ops.top_k: %d out of range", k)
		}
		spec.TopK = int(k)
	}
	if n, ok, err := f.intField("trace_events"); err != nil {
		return spec, err
	} else if ok {
		if n < 0 || n > math.MaxInt32 {
			return spec, fmt.Errorf("serve: ops.trace_events: %d out of range", n)
		}
		spec.TraceEvents = int(n)
	}
	if spec.Enabled, _, err = f.boolField("enabled"); err != nil {
		return spec, err
	}
	return spec, f.finish()
}

func journeysFromTree(v any) (JourneySpec, error) {
	var spec JourneySpec
	f, err := asFields("journeys", v)
	if err != nil {
		return spec, err
	}
	if spec.Enabled, _, err = f.boolField("enabled"); err != nil {
		return spec, err
	}
	if spec.Sample, _, err = f.floatField("sample"); err != nil {
		return spec, err
	}
	if n, ok, err := f.intField("max_segments"); err != nil {
		return spec, err
	} else if ok {
		if n < 0 || n > math.MaxInt32 {
			return spec, fmt.Errorf("serve: journeys.max_segments: %d out of range", n)
		}
		spec.MaxSegments = int(n)
	}
	return spec, f.finish()
}

func alertFromTree(path string, v any) (AlertRule, error) {
	var r AlertRule
	f, err := asFields(path, v)
	if err != nil {
		return r, err
	}
	if r.Name, _, err = f.str("name"); err != nil {
		return r, err
	}
	if r.Tenant, _, err = f.str("tenant"); err != nil {
		return r, err
	}
	if r.Metric, _, err = f.str("metric"); err != nil {
		return r, err
	}
	if r.Threshold, _, err = f.floatOrDurationField("threshold"); err != nil {
		return r, err
	}
	if r.FastWindow, _, err = f.durationField("fast_window"); err != nil {
		return r, err
	}
	if r.SlowWindow, _, err = f.durationField("slow_window"); err != nil {
		return r, err
	}
	if r.Severity, _, err = f.str("severity"); err != nil {
		return r, err
	}
	return r, f.finish()
}

func topoFromTree(v any) (TopoSpec, error) {
	var spec TopoSpec
	f, err := asFields("topology", v)
	if err != nil {
		return spec, err
	}
	if spec.Preset, _, err = f.str("preset"); err != nil {
		return spec, err
	}
	if spec.StorageMiB, _, err = f.intField("storage_mib"); err != nil {
		return spec, err
	}
	if spec.DRAMMiB, _, err = f.intField("dram_mib"); err != nil {
		return spec, err
	}
	return spec, f.finish()
}

func tenantFromTree(path string, v any) (Tenant, error) {
	var t Tenant
	f, err := asFields(path, v)
	if err != nil {
		return t, err
	}
	if t.Name, _, err = f.str("name"); err != nil {
		return t, err
	}
	if t.Rate, _, err = f.rateField("rate"); err != nil {
		return t, err
	}
	if t.Weight, _, err = f.floatField("weight"); err != nil {
		return t, err
	}
	if t.QuotaMiB, _, err = f.intField("quota_mib"); err != nil {
		return t, err
	}
	if t.SLO, _, err = f.durationField("slo"); err != nil {
		return t, err
	}
	if t.SLOTarget, _, err = f.floatField("slo_target"); err != nil {
		return t, err
	}
	if mj, _, err := f.intField("max_jobs"); err != nil {
		return t, err
	} else if mj < 0 || mj > math.MaxInt32 {
		return t, fmt.Errorf("serve: %s.max_jobs: %d out of range", path, mj)
	} else {
		t.MaxJobs = int(mj)
	}
	if mq, _, err := f.intField("max_queue"); err != nil {
		return t, err
	} else if mq < 0 || mq > math.MaxInt32 {
		return t, fmt.Errorf("serve: %s.max_queue: %d out of range", path, mq)
	} else {
		t.MaxQueue = int(mq)
	}
	mix, ok, err := f.list("mix")
	if err != nil {
		return t, err
	}
	if ok {
		for i, mv := range mix {
			m, err := mixFromTree(fmt.Sprintf("%s.mix[%d]", path, i), mv)
			if err != nil {
				return t, err
			}
			t.Mix = append(t.Mix, m)
		}
	}
	return t, f.finish()
}

func mixFromTree(path string, v any) (MixEntry, error) {
	var m MixEntry
	f, err := asFields(path, v)
	if err != nil {
		return m, err
	}
	if m.Workload, _, err = f.str("workload"); err != nil {
		return m, err
	}
	if n, _, err := f.intField("n"); err != nil {
		return m, err
	} else if n < math.MinInt32 || n > math.MaxInt32 {
		return m, fmt.Errorf("serve: %s.n: %d out of range", path, n)
	} else {
		m.N = int(n)
	}
	if it, _, err := f.intField("iters"); err != nil {
		return m, err
	} else if it < math.MinInt32 || it > math.MaxInt32 {
		return m, fmt.Errorf("serve: %s.iters: %d out of range", path, it)
	} else {
		m.Iters = int(it)
	}
	if m.Weight, _, err = f.floatField("weight"); err != nil {
		return m, err
	}
	return m, f.finish()
}
