package repro

// Ablation benchmarks for the design choices the paper discusses but does
// not plot: chunk-pipeline depth (multi-stage transfer, §III-C), blocking
// size (§V-B's "overly fine-grained decomposition" warning), the NVM
// staging level (§VI "Northup for HPC"), layout-transforming moves
// (§VI "Data Layout"), and profile-guided chunk placement (§III-E).

import (
	"fmt"
	"testing"

	"repro/internal/apps/gemm"
	"repro/internal/apps/hotspot"
	"repro/internal/apps/spmv"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/trace"
	"repro/internal/workload"
)

func phantomOpts() core.Options {
	o := core.DefaultOptions()
	o.Phantom = true
	return o
}

// BenchmarkAblationPipelineDepth sweeps the chunk-pipeline depth for
// out-of-core GEMM on the SSD tree: depth 1 serializes loads behind
// compute; deeper pipelines overlap them (the §III-C multi-stage transfer).
// Metric: virtual seconds per depth.
func BenchmarkAblationPipelineDepth(b *testing.B) {
	cases := []struct {
		name       string
		depth      int
		sequential bool
	}{
		{"sequential", 1, true},
		{"depth-1", 1, false},
		{"depth-2", 2, false},
		{"depth-4", 4, false},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			var elapsed sim.Time
			for i := 0; i < b.N; i++ {
				e := sim.NewEngine()
				tree := topo.APU(e, topo.APUConfig{Storage: topo.SSD,
					StorageMiB: 24576, DRAMMiB: 2048})
				rt := core.NewRuntime(e, tree, phantomOpts())
				res, err := gemm.RunNorthup(rt, gemm.Config{
					N: 16384, ShardDim: 4096, Depth: c.depth, Sequential: c.sequential})
				if err != nil {
					b.Fatal(err)
				}
				elapsed = res.Stats.Elapsed
			}
			b.ReportMetric(elapsed.Seconds(), "virtual-s")
		})
	}
}

// BenchmarkAblationBlockingSize sweeps the stencil chunk size at fixed
// input: small chunks multiply runtime calls and kernel launches (the
// low-utilization regime §V-B warns about), large chunks bound pipeline
// overlap. Metrics: virtual seconds and runtime-overhead share.
func BenchmarkAblationBlockingSize(b *testing.B) {
	for _, chunk := range []int{8192, 4096, 2048, 1024} {
		b.Run(fmt.Sprintf("chunk-%d", chunk), func(b *testing.B) {
			var elapsed sim.Time
			var overhead float64
			for i := 0; i < b.N; i++ {
				e := sim.NewEngine()
				tree := topo.APU(e, topo.APUConfig{Storage: topo.SSD,
					StorageMiB: 24576, DRAMMiB: 2048})
				rt := core.NewRuntime(e, tree, phantomOpts())
				res, err := hotspot.RunNorthup(rt, hotspot.Config{
					N: 16384, ChunkDim: chunk, Iters: 60})
				if err != nil {
					b.Fatal(err)
				}
				elapsed = res.Stats.Elapsed
				overhead = res.Stats.Breakdown.FractionOfTotal(trace.Runtime)
			}
			b.ReportMetric(elapsed.Seconds(), "virtual-s")
			b.ReportMetric(overhead, "runtime-share")
		})
	}
}

// BenchmarkAblationNVMStaging compares out-of-core GEMM on a disk-rooted
// machine (the regime where storage re-reads hurt most) across three
// hierarchies: the plain 2-level tree, the §VI 3-level tree with an NVM
// middle level, and the same with B resident in NVM. Metric: virtual
// seconds.
func BenchmarkAblationNVMStaging(b *testing.B) {
	const n = 16384
	cfg := gemm.Config{N: n, ShardDim: 4096}
	cases := []struct {
		name  string
		build func(e *sim.Engine) *topo.Tree
		stage bool
	}{
		{"2level-hdd", func(e *sim.Engine) *topo.Tree {
			return topo.APU(e, topo.APUConfig{Storage: topo.HDD,
				StorageMiB: 24576, DRAMMiB: 2048})
		}, false},
		{"3level-nvm", func(e *sim.Engine) *topo.Tree {
			return topo.APUWithNVM(e, topo.NVMConfig{Storage: topo.HDD,
				StorageMiB: 24576, NVMMiB: 8192, DRAMMiB: 2048})
		}, false},
		{"3level-nvm-stageB", func(e *sim.Engine) *topo.Tree {
			return topo.APUWithNVM(e, topo.NVMConfig{Storage: topo.HDD,
				StorageMiB: 24576, NVMMiB: 8192, DRAMMiB: 2048})
		}, true},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			var elapsed sim.Time
			for i := 0; i < b.N; i++ {
				e := sim.NewEngine()
				rt := core.NewRuntime(e, c.build(e), phantomOpts())
				run := cfg
				run.StageB = c.stage
				if c.name == "3level-nvm" || c.stage {
					// The NVM level stages shards; DRAM takes k-panels.
					run.ShardDim = 4096
				}
				res, err := gemm.RunNorthup(rt, run)
				if err != nil {
					b.Fatal(err)
				}
				elapsed = res.Stats.Elapsed
			}
			b.ReportMetric(elapsed.Seconds(), "virtual-s")
		})
	}
}

// BenchmarkAblationLayoutTransform quantifies §VI's data-layout claim:
// accessing a column of a row-major matrix repeatedly is a strided gather
// each time; transforming the layout once costs an extra pass but makes
// every subsequent access contiguous. The crossover appears as reuse grows.
// Metric: virtual microseconds per configuration.
func BenchmarkAblationLayoutTransform(b *testing.B) {
	const rows, cols = 2048, 2048
	const colBytes = rows * 4
	for _, reuse := range []int{1, 4, 16} {
		for _, transform := range []bool{false, true} {
			name := fmt.Sprintf("reuse-%d/strided", reuse)
			if transform {
				name = fmt.Sprintf("reuse-%d/transformed", reuse)
			}
			b.Run(name, func(b *testing.B) {
				var elapsed sim.Time
				for i := 0; i < b.N; i++ {
					e := sim.NewEngine()
					tree := topo.APU(e, topo.APUConfig{Storage: topo.SSD,
						StorageMiB: 256, DRAMMiB: 128})
					rt := core.NewRuntime(e, tree, phantomOpts())
					dram := tree.Node(1)
					_, err := rt.Run("layout", func(c *core.Ctx) error {
						m, err := c.AllocAt(dram, rows*cols*4)
						if err != nil {
							return err
						}
						vec, err := c.AllocAt(dram, colBytes)
						if err != nil {
							return err
						}
						var mT *core.Buffer
						if transform {
							if mT, err = c.AllocAt(dram, rows*cols*4); err != nil {
								return err
							}
							if err := c.MoveDataTransposeF32(mT, m, 0, 0, rows, cols); err != nil {
								return err
							}
						}
						for r := 0; r < reuse; r++ {
							col := (r * 37) % cols
							if transform {
								// Column col is now a contiguous run.
								if err := c.MoveData(vec, mT, 0, int64(col)*colBytes, colBytes); err != nil {
									return err
								}
							} else {
								// Strided gather: one row element at a time.
								if err := c.MoveData2D(vec, m, 0, 4, int64(col)*4, cols*4, rows, 4); err != nil {
									return err
								}
							}
						}
						return nil
					})
					if err != nil {
						b.Fatal(err)
					}
					elapsed = e.Now()
				}
				b.ReportMetric(elapsed.Seconds()*1e6, "virtual-us")
			})
		}
	}
}

// BenchmarkAblationShardCache sweeps the reuse-aware staging cache's
// capacity for the SpMV power iteration on the SSD tree: every iteration
// re-reads the whole matrix from storage, so resident shards convert that
// traffic into hits. Capacity 0 is the uncached baseline; 1792 MiB holds
// the whole ~528 MiB matrix. Metrics: virtual seconds, speedup over
// uncached, and hit rate.
func BenchmarkAblationShardCache(b *testing.B) {
	const rows = 4_194_304 // 4M rows x 16 nnz/row ~= 528 MiB of matrix
	var baseline sim.Time
	for _, capMiB := range []int64{0, 256, 1024, 1792} {
		name := "uncached"
		if capMiB > 0 {
			name = fmt.Sprintf("cache-%dmib", capMiB)
		}
		b.Run(name, func(b *testing.B) {
			var elapsed sim.Time
			var cs trace.CacheStats
			for i := 0; i < b.N; i++ {
				e := sim.NewEngine()
				tree := topo.APU(e, topo.APUConfig{Storage: topo.SSD,
					StorageMiB: 24576, DRAMMiB: 2048, WithCPU: true})
				opts := phantomOpts()
				opts.Cache = core.CacheOptions{Enabled: capMiB > 0,
					CapacityBytes: capMiB << 20, Prefetch: capMiB > 0}
				rt := core.NewRuntime(e, tree, opts)
				res, err := spmv.RunNorthup(rt, spmv.Config{
					N: rows, AvgNNZ: 16, Kind: workload.SparseUniform,
					Seed: 3, Chunks: 4, Iters: 6})
				if err != nil {
					b.Fatal(err)
				}
				elapsed = res.Stats.Elapsed
				cs = rt.CacheStats()
			}
			if capMiB == 0 {
				baseline = elapsed
			}
			b.ReportMetric(elapsed.Seconds(), "virtual-s")
			if baseline > 0 {
				b.ReportMetric(float64(baseline)/float64(elapsed), "speedup")
			}
			b.ReportMetric(cs.HitRate(), "hit-rate")
		})
	}
}

// BenchmarkAblationProfiledMapping compares §III-E's profile-guided chunk
// placement against fixed GPU placement for the stencil: the profiler pays
// a small exploration cost, then matches the fixed-best choice. Metric:
// virtual seconds.
func BenchmarkAblationProfiledMapping(b *testing.B) {
	cfg := hotspot.Config{N: 16384, ChunkDim: 4096, Iters: 60}
	newRT := func() *core.Runtime {
		e := sim.NewEngine()
		tree := topo.APU(e, topo.APUConfig{Storage: topo.SSD,
			StorageMiB: 24576, DRAMMiB: 2048, WithCPU: true})
		return core.NewRuntime(e, tree, phantomOpts())
	}
	b.Run("fixed-gpu", func(b *testing.B) {
		var elapsed sim.Time
		for i := 0; i < b.N; i++ {
			res, err := hotspot.RunNorthup(newRT(), cfg)
			if err != nil {
				b.Fatal(err)
			}
			elapsed = res.Stats.Elapsed
		}
		b.ReportMetric(elapsed.Seconds(), "virtual-s")
	})
	b.Run("profiled", func(b *testing.B) {
		var elapsed sim.Time
		var onCPU int
		for i := 0; i < b.N; i++ {
			res, err := hotspot.RunProfiled(newRT(), cfg)
			if err != nil {
				b.Fatal(err)
			}
			elapsed = res.Stats.Elapsed
			onCPU = res.ChunksOnCPU
		}
		b.ReportMetric(elapsed.Seconds(), "virtual-s")
		b.ReportMetric(float64(onCPU), "chunks-on-cpu")
	})
}
