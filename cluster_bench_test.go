package repro

// Benchmark for the distributed-systems prototype (§VII future work):
// strong scaling of a 1-D decomposed GEMM across simulated machines.

import (
	"fmt"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/topo"
)

// BenchmarkDistributedGEMMScaling sweeps the machine count for a 16k
// multiply: compute shrinks with machines while B's broadcast grows, and
// the fabric (5 GB/s, below the NVM profile) bounds the useful cluster
// size. Metrics: total, compute and distribution virtual seconds.
func BenchmarkDistributedGEMMScaling(b *testing.B) {
	for _, machines := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("machines-%d", machines), func(b *testing.B) {
			var res *cluster.GEMMResult
			for i := 0; i < b.N; i++ {
				e := sim.NewEngine()
				opts := core.DefaultOptions()
				opts.Phantom = true
				cl, err := cluster.New(e, machines, cluster.DefaultFabric(), opts,
					func(e *sim.Engine, i int) *topo.Tree {
						return topo.APU(e, topo.APUConfig{Storage: topo.SSD,
							StorageMiB: 24576, DRAMMiB: 2048})
					})
				if err != nil {
					b.Fatal(err)
				}
				res, err = cluster.DistributedGEMM(cl, cluster.GEMMConfig{N: 16384})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.Elapsed.Seconds(), "total-s")
			b.ReportMetric(res.ComputeTime.Seconds(), "compute-s")
			b.ReportMetric(res.DistributionTime.Seconds(), "distribute-s")
		})
	}
}
