package repro

// Cross-cutting integration tests: whole-repository properties that no
// single package can check alone.

import (
	"testing"

	"repro/internal/apps/gemm"
	"repro/internal/apps/hotspot"
	"repro/internal/apps/spmv"
	"repro/internal/core"
	"repro/internal/figures"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/workload"
)

// TestAllAppsShareOneRuntime runs the three applications back to back on a
// single runtime and tree, verifying results and that every byte of memory
// (beyond the persistent input/output files) is returned between apps.
func TestAllAppsShareOneRuntime(t *testing.T) {
	e := sim.NewEngine()
	tree := topo.APU(e, topo.APUConfig{Storage: topo.SSD, StorageMiB: 64,
		DRAMMiB: 2, WithCPU: true})
	rt := core.NewRuntime(e, tree, core.DefaultOptions())
	dram := tree.Node(1)

	// GEMM.
	gres, err := gemm.RunNorthup(rt, gemm.Config{N: 128, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if used := dram.Mem.Used(); used != 0 {
		t.Fatalf("gemm leaked %d staging bytes", used)
	}
	want := make([]float32, 128*128)
	gemm.Reference(want, workload.Dense(128, 128, 1), workload.Dense(128, 128, 2), 128, 128, 128)
	for i := range want {
		d := gres.C[i] - want[i]
		if d > 0.01 || d < -0.01 {
			t.Fatal("gemm result wrong on shared runtime")
		}
	}

	// HotSpot.
	hres, err := hotspot.RunNorthup(rt, hotspot.Config{N: 64, Seed: 2, ChunkDim: 32, Iters: 2})
	if err != nil {
		t.Fatal(err)
	}
	if used := dram.Mem.Used(); used != 0 {
		t.Fatalf("hotspot leaked %d staging bytes", used)
	}
	if hres.Temp == nil {
		t.Fatal("hotspot produced no result")
	}

	// SpMV.
	sres, err := spmv.RunNorthup(rt, spmv.Config{N: 2000, AvgNNZ: 8,
		Kind: workload.SparseUniform, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if used := dram.Mem.Used(); used != 0 {
		t.Fatalf("spmv leaked %d staging bytes", used)
	}
	m := workload.Sparse(workload.SparseUniform, 2000, 8, 3)
	wantY := spmv.Reference(m, workload.Vector(2000, 4))
	for i := range wantY {
		d := sres.Y[i] - wantY[i]
		if d > 0.01 || d < -0.01 {
			t.Fatal("spmv result wrong on shared runtime")
		}
	}

	// The runtime's accumulated breakdown covers all three runs.
	if rt.Breakdown().Sum() <= gres.Stats.Breakdown.Sum() {
		t.Fatal("accumulated breakdown does not include later runs")
	}
}

// TestFiguresAreDeterministic reruns a figure driver and demands
// bit-identical output: the whole point of the DES substitution.
func TestFiguresAreDeterministic(t *testing.T) {
	run := func() string {
		res, err := figures.Fig6(figures.Options{Scale: 8})
		if err != nil {
			t.Fatal(err)
		}
		return res.String()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("figure 6 not deterministic:\n%s\nvs\n%s", a, b)
	}
}

// TestScaleInvarianceOfOrdering checks that the qualitative Figure 6
// ordering (disk > ssd > in-memory; csr most affected) holds at every
// supported scale.
func TestScaleInvarianceOfOrdering(t *testing.T) {
	for _, scale := range []int{4, 8} {
		res, err := figures.Fig6(figures.Options{Scale: scale})
		if err != nil {
			t.Fatalf("scale %d: %v", scale, err)
		}
		for _, app := range figures.Apps {
			ssd := res.Row(app, figures.SSD).Normalized
			hdd := res.Row(app, figures.HDD).Normalized
			if !(1.0 < ssd && ssd < hdd) {
				t.Fatalf("scale %d, %v: ordering broken (ssd=%.2f disk=%.2f)",
					scale, app, ssd, hdd)
			}
		}
	}
}

// TestPhantomNeverAllocatesPayloads pins the memory story of phantom mode:
// a paper-scale run must not materialize gigabytes.
func TestPhantomNeverAllocatesPayloads(t *testing.T) {
	e := sim.NewEngine()
	tree := topo.APU(e, topo.APUConfig{Storage: topo.SSD,
		StorageMiB: 24576, DRAMMiB: 2048})
	opts := core.DefaultOptions()
	opts.Phantom = true
	rt := core.NewRuntime(e, tree, opts)
	res, err := gemm.RunNorthup(rt, gemm.Config{N: 16384})
	if err != nil {
		t.Fatal(err)
	}
	if res.C != nil {
		t.Fatal("phantom run produced a result matrix")
	}
	// The simulated device believes 2+ GiB are reserved while host memory
	// holds none of it; reaching here without OOM is the real assertion.
	if res.Stats.Elapsed <= 0 {
		t.Fatal("no virtual time charged")
	}
}
