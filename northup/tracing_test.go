package northup_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/trace"
	"repro/northup"
)

// tracedGEMM runs one fixed GEMM workload with a fresh engine/tree/runtime
// and an attached recorder, returning the run stats, the tree, and the
// recorder.
func tracedGEMM(t *testing.T, phantom bool, n int) (northup.RunStats, *northup.Tree, *northup.TraceRecorder) {
	t.Helper()
	e := northup.NewEngine()
	tree := northup.APU(e, northup.APUConfig{Storage: northup.SSD,
		StorageMiB: 512, DRAMMiB: 16, WithCPU: true})
	opts := northup.DefaultOptions()
	opts.Phantom = phantom
	rec := northup.NewTraceRecorder(northup.TraceOptions{})
	opts.Trace = rec
	rt := northup.NewRuntime(e, tree, opts)
	res, err := northup.GEMMNorthup(rt, northup.GEMMConfig{N: n, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return res.Stats, tree, rec
}

// TestChromeExportGolden is the determinism gate: two identical runs must
// export byte-identical Chrome traces, and the file must validate, carry
// distinct per-node lanes, and show compute overlapping movement lanes.
func TestChromeExportGolden(t *testing.T) {
	export := func() []byte {
		_, tree, rec := tracedGEMM(t, false, 192)
		var buf bytes.Buffer
		if err := northup.WriteChromeTrace(&buf, rec.Events(),
			northup.TraceExportOptions{NodeLabel: northup.TraceNodeLabeler(tree)}); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := export(), export()
	if !bytes.Equal(a, b) {
		t.Fatalf("identical runs exported different traces (%d vs %d bytes)", len(a), len(b))
	}
	if err := northup.ValidateChromeTrace(a); err != nil {
		t.Fatalf("exported trace invalid: %v", err)
	}
	lanes := map[string]bool{}
	parsed, err := northup.ParseChromeTrace(a)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range northup.TraceLaneNames(parsed.Events) {
		lanes[name] = true
	}
	for _, want := range []string{"node0/io", "node1/gpu", "node1/alloc", "runtime"} {
		if !lanes[want] {
			t.Errorf("trace is missing lane %s (have %v)", want, lanes)
		}
	}
	if !strings.Contains(string(a), `"process_name"`) {
		t.Error("export lacks process_name metadata")
	}
}

// TestEventTotalsMatchBreakdown is the bit-for-bit accounting check: the
// recorder's per-category busy tallies and the sum of span durations per
// category must both equal the legacy Breakdown, since every charge flows
// through the same code path.
func TestEventTotalsMatchBreakdown(t *testing.T) {
	stats, _, rec := tracedGEMM(t, false, 192)
	if rec.Dropped() > 0 {
		t.Fatalf("ring dropped %d events; totals test needs the full stream", rec.Dropped())
	}
	var fromEvents [8]northup.Time
	for _, ev := range rec.Events() {
		if ev.Kind == trace.KindSpan && ev.Cat != trace.None {
			fromEvents[ev.Cat] += ev.Dur
		}
	}
	for _, c := range trace.Categories {
		want := stats.Breakdown.Busy(c)
		if got := rec.CategoryBusy(c); got != want {
			t.Errorf("%v: recorder tally %v != breakdown %v", c, got, want)
		}
		if got := fromEvents[c]; got != want {
			t.Errorf("%v: summed span durations %v != breakdown %v", c, got, want)
		}
	}
}

// TestCriticalPathEqualsMakespan checks the critical-path walker attributes
// exactly the run's elapsed virtual time: the events span [0, Elapsed], the
// path tiles that window, and its length is the makespan.
func TestCriticalPathEqualsMakespan(t *testing.T) {
	stats, _, rec := tracedGEMM(t, false, 192)
	events := rec.Events()
	sum := northup.SummarizeTrace(events, northup.TraceSummaryOptions{})
	if sum.Start != 0 || sum.End != stats.Elapsed {
		t.Fatalf("event window [%v,%v), want [0,%v)", sum.Start, sum.End, stats.Elapsed)
	}
	cp := northup.TraceCriticalPath(events, northup.TraceSummaryOptions{})
	if cp.Length() != stats.Elapsed {
		t.Fatalf("critical path %v != makespan %v", cp.Length(), stats.Elapsed)
	}
	at := cp.Start
	for i, seg := range cp.Segments {
		if seg.Start != at {
			t.Fatalf("segment %d starts at %v, want %v (path must tile the window)", i, seg.Start, at)
		}
		at = seg.End
	}
	if at != cp.End {
		t.Fatalf("path ends at %v, want %v", at, cp.End)
	}
}

// TestUtilizationBounded checks the interval-union metric: no lane can be
// busier than the window, whatever overlap the spans have.
func TestUtilizationBounded(t *testing.T) {
	_, tree, rec := tracedGEMM(t, false, 192)
	sum := northup.SummarizeTrace(rec.Events(), northup.TraceSummaryOptions{
		NominalBW: northup.NominalBandwidth(tree)})
	window := sum.Window()
	for _, nm := range sum.Nodes {
		for _, lm := range nm.Lanes {
			if u := lm.Utilization(window); u < 0 || u > 1 {
				t.Errorf("lane %v utilization %.3f outside [0,1]", lm.Lane, u)
			}
		}
	}
	if !strings.Contains(sum.Report(), "util") {
		t.Error("summary report lacks the utilization column")
	}
}

// TestRuntimeOverheadBelowOnePercent asserts the paper's §V-B bound at
// paper-like scale: runtime bookkeeping stays under 1% of elapsed time.
// (Small toy runs sit above the bound — overhead amortizes with real work —
// so this uses a phantom paper-scale matrix.)
func TestRuntimeOverheadBelowOnePercent(t *testing.T) {
	stats, _, _ := tracedGEMM(t, true, 2048)
	frac := stats.Breakdown.FractionOfTotal(trace.Runtime)
	if frac >= 0.01 {
		t.Fatalf("runtime bookkeeping %.2f%% of elapsed, §V-B bounds it below 1%%", 100*frac)
	}
	if !strings.Contains(stats.Breakdown.Report(), "of-elapsed") {
		t.Error("breakdown report lacks the of-elapsed column")
	}
}

// TestTracingOffChangesNothing runs the same workload with and without a
// recorder and requires identical virtual timing and breakdown: tracing must
// observe the run, never perturb it.
func TestTracingOffChangesNothing(t *testing.T) {
	run := func(traced bool) northup.RunStats {
		e := northup.NewEngine()
		tree := northup.APU(e, northup.APUConfig{Storage: northup.SSD,
			StorageMiB: 512, DRAMMiB: 16, WithCPU: true})
		opts := northup.DefaultOptions()
		if traced {
			opts.Trace = northup.NewTraceRecorder(northup.TraceOptions{})
		}
		rt := northup.NewRuntime(e, tree, opts)
		res, err := northup.GEMMNorthup(rt, northup.GEMMConfig{N: 192, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats
	}
	on, off := run(true), run(false)
	if on.Elapsed != off.Elapsed {
		t.Fatalf("tracing changed elapsed time: %v vs %v", on.Elapsed, off.Elapsed)
	}
	for _, c := range trace.Categories {
		if on.Breakdown.Busy(c) != off.Breakdown.Busy(c) {
			t.Errorf("tracing changed %v busy time: %v vs %v",
				c, on.Breakdown.Busy(c), off.Breakdown.Busy(c))
		}
	}
}

// TestStealTraceCarriesQueueTelemetry runs the stealing stencil traced and
// checks the queue-depth counters and pop totals surface through the trace
// and result — and that the scheduler detaches its queue monitors when the
// run ends, leaving the shared tree clean for the next job.
func TestStealTraceCarriesQueueTelemetry(t *testing.T) {
	e := northup.NewEngine()
	tree := northup.APU(e, northup.APUConfig{Storage: northup.SSD,
		StorageMiB: 256, DRAMMiB: 16, WithCPU: true})
	opts := northup.DefaultOptions()
	rec := northup.NewTraceRecorder(northup.TraceOptions{})
	opts.Trace = rec
	rt := northup.NewRuntime(e, tree, opts)
	res, err := northup.HotSpotSteal(rt, northup.StealConfig{
		M: 256, ChunkDim: 64, Seed: 1, Iters: 2, Mode: northup.CPUGPU})
	if err != nil {
		t.Fatal(err)
	}
	if res.Pops+res.Steals == 0 {
		t.Fatal("steal run reports no task executions")
	}
	sum := northup.SummarizeTrace(rec.Events(), northup.TraceSummaryOptions{})
	if sum.Counters == 0 {
		t.Error("trace has no queue-depth counter samples")
	}
	if sum.Steals != res.Steals {
		t.Errorf("trace counted %d steals, result says %d", sum.Steals, res.Steals)
	}
	// Queue monitors are scoped to the run: once it completes they are
	// detached, so a concurrent admitter never sees another job's deques.
	if strings.Contains(tree.QueueReport(), "pops=") {
		t.Errorf("queue monitors leaked past the run:\n%s", tree.QueueReport())
	}
}
