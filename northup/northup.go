// Package northup is the public API of the Northup reproduction: a
// programming and runtime framework for divide-and-conquer execution on
// systems with heterogeneous memories and processors, after
//
//	Shuai Che, Jieming Yin. "Northup: Divide-and-Conquer Programming in
//	Systems with Heterogeneous Memories and Processors." IPPS 2019.
//
// A Northup program sees the machine as an asymmetric tree: the slowest
// storage is the root (level 0), faster memories are its descendants, and
// processors (CPU/GPU models) attach to the leaves. Applications are
// recursive functions over a task context:
//
//	rt.Run("app", func(c *northup.Ctx) error {
//		var step func(c *northup.Ctx) error
//		step = func(c *northup.Ctx) error {
//			if c.IsLeaf() {
//				// computation at leaf nodes
//				_, err := c.LaunchKernel(kernel, groups)
//				return err
//			}
//			for each chunk {
//				child := c.Children()[0]
//				buf, _ := c.AllocAt(child, chunkSize) // setup_buffers
//				c.MoveDataDown(buf, src, 0, off, n)   // data_down
//				if err := c.Descend(child, step); err != nil { // northup_spawn
//					return err
//				}
//				c.MoveDataUp(dst, buf, off, 0, n) // data_up
//				c.Release(buf)
//			}
//			return nil
//		}
//		return step(c)
//	})
//
// Data management uses the paper's unified interface (Table I): buffers are
// opaque handles valid on any node kind — file storage, DRAM, GPU device
// memory — and MoveData dispatches on the endpoints' storage types, exactly
// like the paper's move_data wrapper.
//
// Because real heterogeneous hardware (APUs, discrete GPUs, PCIe SSDs) is
// simulated, every run is deterministic: devices charge virtual time on a
// discrete-event engine while computation executes functionally on the
// host, so results are bit-checkable and timing reproduces the paper's
// relative measurements. See DESIGN.md for the substitution inventory.
//
// # Paper-to-API name map
//
//	fetch_node_type()     Node.Kind()
//	get_parent()          Ctx.Parent() / Node.Parent
//	get_children_list()   Ctx.Children() / Node.Children
//	get_cur_treenode()    Ctx.Node()
//	get_level()           Ctx.Level()
//	get_max_treelevel()   Ctx.MaxLevel()
//	alloc(size, node)     Ctx.AllocAt(node, size)
//	move_data(...)        Ctx.MoveData(dst, src, dstOff, srcOff, n)
//	move_data_down(...)   Ctx.MoveDataDown(dst, src, dstOff, srcOff, n)
//	move_data_up(...)     Ctx.MoveDataUp(dst, src, dstOff, srcOff, n)
//	release(ptr)          Ctx.Release(buf)
//	northup_spawn(f(...)) Ctx.Descend(child, f) / Ctx.Spawn(name, node, f)
package northup

import (
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/gpu"
	"repro/internal/proc"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/trace"
)

// Core runtime types.
type (
	// Engine is the deterministic discrete-event simulation engine all
	// devices and processes of one system share.
	Engine = sim.Engine
	// Proc is a simulated process (a task's execution vehicle).
	Proc = sim.Proc
	// Time is virtual time in nanoseconds.
	Time = sim.Time
	// Runtime executes Northup programs on one topological tree.
	Runtime = core.Runtime
	// Options tune runtime bookkeeping and phantom (timing-only) mode.
	Options = core.Options
	// Ctx is the task context of a recursive Northup function.
	Ctx = core.Ctx
	// Buffer is the opaque handle of the unified data-management API.
	Buffer = core.Buffer
	// RunStats reports a run's elapsed virtual time and breakdown.
	RunStats = core.RunStats
	// Join is the handle of an asynchronously spawned task.
	Join = core.Join
	// CacheOptions configures the reuse-aware staging cache interposed on
	// the Ctx.MoveDataDownCached path (capacity, LRU policy, prefetch).
	CacheOptions = core.CacheOptions
	// CacheStats reports staging-cache traffic (hits, misses, evictions,
	// prefetches); also embedded in every Breakdown.
	CacheStats = trace.CacheStats
	// StreamOptions tunes the streaming transfer engine behind
	// Ctx.MoveDataDownStreamed / Ctx.MoveDataUpStreamed: sub-chunk count
	// (0 = adaptive), staging-ring depth, and the per-chunk consumer hook.
	StreamOptions = core.StreamOptions
	// StreamStats reports streaming-engine activity (streams, sub-chunks,
	// per-hop moves, bytes, peak pipeline and ring occupancy); read it with
	// Runtime.StreamStats.
	StreamStats = core.StreamStats
)

// Topology types.
type (
	// Tree is a validated Northup topology.
	Tree = topo.Tree
	// Node is one tree vertex: a memory/storage device plus any attached
	// processors.
	Node = topo.Node
	// Builder constructs trees programmatically.
	Builder = topo.Builder
	// NodeRef names a node under construction.
	NodeRef = topo.NodeRef
	// Spec is the declarative (JSON-loadable) topology description.
	Spec = topo.Spec
	// NodeSpec describes one node of a Spec.
	NodeSpec = topo.NodeSpec
)

// Device and processor types.
type (
	// DeviceProfile describes a memory or storage component.
	DeviceProfile = device.Profile
	// DeviceKind classifies devices (the paper's storage_type).
	DeviceKind = device.Kind
	// Processor is any compute element attached to a leaf.
	Processor = proc.Processor
	// CPUModel is the multicore CPU model.
	CPUModel = proc.CPUModel
	// GPU is the functional-plus-timed GPU model.
	GPU = gpu.GPU
	// GPUModel describes a GPU's sustained characteristics.
	GPUModel = gpu.Model
	// Kernel describes one GPU dispatch: cost model plus functional body.
	Kernel = gpu.Kernel
	// Breakdown accumulates the execution-time breakdown of a run.
	Breakdown = trace.Breakdown
)

// Device kinds (the dispatch alphabet of the unified move_data).
const (
	KindMem    = device.KindMem
	KindHBM    = device.KindHBM
	KindNVM    = device.KindNVM
	KindSSD    = device.KindSSD
	KindHDD    = device.KindHDD
	KindGPUMem = device.KindGPUMem
)

// Byte-size and time units.
const (
	KiB = device.KiB
	MiB = device.MiB
	GiB = device.GiB

	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// NewEngine returns an empty simulation engine with the clock at zero.
func NewEngine() *Engine { return sim.NewEngine() }

// NewBuilder returns a topology builder whose devices bind to e.
func NewBuilder(e *Engine) *Builder { return topo.NewBuilder(e) }

// NewRuntime creates a runtime executing on the tree. The engine must be
// the one the tree was built on.
func NewRuntime(e *Engine, t *Tree, opts Options) *Runtime {
	return core.NewRuntime(e, t, opts)
}

// DefaultOptions returns the standard runtime bookkeeping costs.
func DefaultOptions() Options { return core.DefaultOptions() }

// ParseSpec decodes a JSON topology spec.
func ParseSpec(data []byte) (*Spec, error) { return topo.ParseSpec(data) }

// BuildSpec instantiates a declarative topology on the engine.
func BuildSpec(e *Engine, s *Spec) (*Tree, error) { return topo.BuildSpec(e, s) }

// Calibrated device profiles (see internal/device for the constants).
var (
	// HDDProfile models the paper's SATA WD5000AAKX-class drive.
	HDDProfile = device.HDDProfile
	// SSDProfile models a PCIe SSD with the given read/write MB/s.
	SSDProfile = device.SSDProfile
	// NVMProfile models byte-addressable non-volatile memory.
	NVMProfile = device.NVMProfile
	// DRAMProfile models host DRAM.
	DRAMProfile = device.DRAMProfile
	// HBMProfile models die-stacked DRAM.
	HBMProfile = device.HBMProfile
	// GPUMemProfile models discrete-GPU device memory.
	GPUMemProfile = device.GPUMemProfile
)

// Calibrated processor constructors.
var (
	// APUGPU models the paper's integrated (Kaveri-class) GPU.
	APUGPU = gpu.APUGPU
	// DiscreteGPU models the FirePro W9100-class discrete GPU.
	DiscreteGPU = gpu.DiscreteGPU
	// APUCPU models the APU's 4-core CPU.
	APUCPU = gpu.APUCPU
	// NewCPU builds a custom CPU model.
	NewCPU = proc.NewCPU
	// NewGPU builds a custom GPU model.
	NewGPU = gpu.New
	// NewPIM builds a processor-in-memory model: attach it to the memory
	// node it lives in and compute there with Ctx.RunPIM (§VI).
	NewPIM = proc.NewPIM
)

// Standard evaluation topologies (§V-A, §VI).
type (
	// APUConfig parameterizes the 2-level out-of-core topology.
	APUConfig = topo.APUConfig
	// DiscreteConfig parameterizes the 3-level discrete-GPU topology.
	DiscreteConfig = topo.DiscreteConfig
	// NVMConfig parameterizes the NVM-augmented deep hierarchy.
	NVMConfig = topo.NVMConfig
)

// Standard topology constructors and storage choices.
var (
	// APU builds storage -> DRAM(+GPU[,CPU]).
	APU = topo.APU
	// Discrete builds storage -> DRAM(+CPU) -> GPU memory(+GPU).
	Discrete = topo.Discrete
	// APUWithNVM builds storage -> NVM -> DRAM(+GPU[,CPU]).
	APUWithNVM = topo.APUWithNVM
	// MultiBranch builds an asymmetric tree with several staging subtrees.
	MultiBranch = topo.MultiBranch
	// InMemory builds the single-level in-memory baseline.
	InMemory = topo.InMemory
)

// TopoMultiBranchConfig parameterizes the asymmetric multi-subtree
// topology (distinct from the application-level MultiBranchConfig in this
// package, which schedules chunks over it).
type TopoMultiBranchConfig = topo.MultiBranchConfig

// Storage choices for the standard topologies.
const (
	// SSD selects the 1400/600 MB/s PCIe SSD root.
	SSD = topo.SSD
	// HDD selects the SATA disk-drive root.
	HDD = topo.HDD
)

// PiecesToFit returns how many equal pieces a working set must be divided
// into so that buffersPerPiece pieces fit freeBytes simultaneously — the
// §III-B capacity-driven blocking-size helper.
func PiecesToFit(totalBytes, freeBytes int64, buffersPerPiece int) int {
	return core.PiecesToFit(totalBytes, freeBytes, buffersPerPiece)
}
