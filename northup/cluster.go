package northup

import "repro/internal/cluster"

// Distributed-systems prototype (the paper's §VII future work): several
// simulated Northup machines on one virtual clock, connected by a network
// fabric with scatter/broadcast/gather collectives.
type (
	// Cluster holds the machines and fabric.
	Cluster = cluster.Cluster
	// ClusterMachine is one node: a tree plus its runtime.
	ClusterMachine = cluster.Machine
	// FabricSpec parameterizes the interconnect.
	FabricSpec = cluster.FabricSpec
	// ClusterGEMMConfig parameterizes a distributed multiply.
	ClusterGEMMConfig = cluster.GEMMConfig
	// ClusterGEMMResult reports a distributed multiply's phases.
	ClusterGEMMResult = cluster.GEMMResult
)

var (
	// NewCluster builds a cluster of machines on a shared engine.
	NewCluster = cluster.New
	// DefaultFabric returns the InfiniBand-class interconnect (slower than
	// the NVM profile, per §VI's bandwidth observation).
	DefaultFabric = cluster.DefaultFabric
	// DistributedGEMM runs the 1-D row decomposition across the cluster.
	DistributedGEMM = cluster.DistributedGEMM
)
