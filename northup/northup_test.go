package northup_test

import (
	"bytes"
	"testing"

	"repro/northup"
)

// TestPublicAPIEndToEnd writes a complete Northup program through the
// public API only: build an asymmetric tree, run a recursive out-of-core
// byte-doubling job, and verify both the functional result and that timing
// accrued.
func TestPublicAPIEndToEnd(t *testing.T) {
	e := northup.NewEngine()
	b := northup.NewBuilder(e)
	root := b.Root(northup.SSDProfile(64*northup.MiB, 1400, 600))
	dram := b.Child(root, northup.DRAMProfile(4*northup.MiB))
	b.Attach(dram, northup.APUGPU(e), northup.APUCPU(e))
	tree, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	rt := northup.NewRuntime(e, tree, northup.DefaultOptions())

	const total = 1 << 20
	input := make([]byte, total)
	for i := range input {
		input[i] = byte(i % 127)
	}

	var output []byte
	stats, err := rt.Run("double", func(c *northup.Ctx) error {
		src, err := c.Alloc(total) // on the storage root
		if err != nil {
			return err
		}
		dst, err := c.Alloc(total)
		if err != nil {
			return err
		}
		// Seed the input through a staging buffer (functionally, data
		// starts on storage; here we stage it in for the test).
		stage, err := c.AllocAt(c.Children()[0], total)
		if err != nil {
			return err
		}
		copy(stage.Bytes(), input)
		if err := c.MoveData(src, stage, 0, 0, total); err != nil {
			return err
		}

		// The recursive job: chunk by capacity, double each byte at the
		// leaf CPU, store back.
		pieces := northup.PiecesToFit(total, c.Children()[0].Mem.Free(), 2)
		chunk := int64(total / pieces)
		child := c.Children()[0]
		for i := 0; i < pieces; i++ {
			buf, err := c.AllocAt(child, chunk)
			if err != nil {
				return err
			}
			if err := c.MoveDataDown(buf, src, 0, int64(i)*chunk, chunk); err != nil {
				return err
			}
			if err := c.Descend(child, func(lc *northup.Ctx) error {
				if !lc.IsLeaf() || lc.Level() != lc.MaxLevel() {
					t.Error("leaf test failed at the bottom of the tree")
				}
				_, err := lc.RunCPU(float64(chunk), float64(chunk), func() {
					bs := buf.Bytes()
					for j := range bs {
						bs[j] *= 2
					}
				})
				return err
			}); err != nil {
				return err
			}
			if err := c.MoveDataUp(dst, buf, int64(i)*chunk, 0, chunk); err != nil {
				return err
			}
			c.Release(buf)
		}

		// Read the result back out through staging.
		if err := c.MoveData(stage, dst, 0, 0, total); err != nil {
			return err
		}
		output = append([]byte(nil), stage.Bytes()...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := make([]byte, total)
	for i := range want {
		want[i] = input[i] * 2
	}
	if !bytes.Equal(output, want) {
		t.Fatal("recursive out-of-core computation corrupted data")
	}
	if stats.Elapsed <= 0 {
		t.Fatal("no virtual time elapsed")
	}
}

func TestSpecThroughPublicAPI(t *testing.T) {
	spec, err := northup.ParseSpec([]byte(`{
	  "name": "nvm-node",
	  "nodes": [
	    {"name": "ssd", "device": "ssd", "capacity_mib": 256},
	    {"name": "nvm", "parent": "ssd", "device": "nvm", "capacity_mib": 64},
	    {"name": "dram", "parent": "nvm", "device": "dram", "capacity_mib": 16, "procs": ["apu-gpu"]}
	  ]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	e := northup.NewEngine()
	tree, err := northup.BuildSpec(e, spec)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Levels() != 3 {
		t.Fatalf("levels = %d", tree.Levels())
	}
	if tree.Node(1).Kind() != northup.KindNVM {
		t.Fatalf("middle level kind = %v", tree.Node(1).Kind())
	}
}

func TestStandardTopologiesThroughPublicAPI(t *testing.T) {
	e := northup.NewEngine()
	apu := northup.APU(e, northup.APUConfig{Storage: northup.HDD, StorageMiB: 128, DRAMMiB: 16})
	if apu.Root().Kind() != northup.KindHDD {
		t.Fatal("HDD root lost")
	}
	d := northup.Discrete(northup.NewEngine(), northup.DiscreteConfig{
		Storage: northup.SSD, StorageMiB: 128, DRAMMiB: 32, GPUMemMiB: 16})
	if d.Levels() != 3 {
		t.Fatal("discrete tree malformed")
	}
	im := northup.InMemory(northup.NewEngine(), 64)
	if im.Levels() != 1 {
		t.Fatal("in-memory tree malformed")
	}
}

// TestExtendedSurface exercises the extension entry points through the
// public API only: sort, profiled mapping, multi-branch scheduling, PIM.
func TestExtendedSurface(t *testing.T) {
	// Out-of-core sort.
	{
		e := northup.NewEngine()
		tree := northup.APU(e, northup.APUConfig{Storage: northup.SSD,
			StorageMiB: 16, DRAMMiB: 1, WithCPU: true})
		rt := northup.NewRuntime(e, tree, northup.DefaultOptions())
		res, err := northup.Sort(rt, northup.SortConfig{N: 20_000, Seed: 1, ChunkKeys: 6_000})
		if err != nil {
			t.Fatal(err)
		}
		if res.Runs < 2 || res.Sorted == nil {
			t.Fatalf("sort: runs=%d", res.Runs)
		}
	}
	// Profiled mapping.
	{
		e := northup.NewEngine()
		tree := northup.APU(e, northup.APUConfig{Storage: northup.SSD,
			StorageMiB: 16, DRAMMiB: 2, WithCPU: true})
		rt := northup.NewRuntime(e, tree, northup.DefaultOptions())
		res, err := northup.HotSpotProfiled(rt, northup.HotSpotConfig{
			N: 64, Seed: 2, ChunkDim: 32, Iters: 2})
		if err != nil {
			t.Fatal(err)
		}
		if res.ChunksOnGPU+res.ChunksOnCPU != 4 {
			t.Fatalf("profiled: %d+%d chunks", res.ChunksOnGPU, res.ChunksOnCPU)
		}
	}
	// Multi-branch scheduling on an asymmetric tree.
	{
		e := northup.NewEngine()
		tree := northup.MultiBranch(e, northup.TopoMultiBranchConfig{
			Storage: northup.SSD, StorageMiB: 64,
			BranchDRAMMiB: []int64{4, 4}, FastBranches: []bool{false, true}})
		rt := northup.NewRuntime(e, tree, northup.DefaultOptions())
		res, err := northup.HotSpotMultiBranch(rt, northup.MultiBranchConfig{
			N: 64, Seed: 3, ChunkDim: 16, Iters: 2, Policy: northup.DynamicQueue})
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		for _, n := range res.ChunksByBranch {
			total += n
		}
		if total != 16 {
			t.Fatalf("multibranch: %d chunks", total)
		}
	}
	// PIM at an NVM node.
	{
		e := northup.NewEngine()
		b := northup.NewBuilder(e)
		root := b.Root(northup.SSDProfile(32*northup.MiB, 1400, 600))
		nvm := b.Child(root, northup.NVMProfile(16*northup.MiB))
		b.Attach(nvm, northup.NewPIM(e, "pim", 8, 4e9, 6.5e9))
		dram := b.Child(nvm, northup.DRAMProfile(4*northup.MiB))
		b.Attach(dram, northup.APUGPU(e))
		tree, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		rt := northup.NewRuntime(e, tree, northup.DefaultOptions())
		ran := false
		if _, err := rt.Run("pim", func(c *northup.Ctx) error {
			return c.Descend(c.Children()[0], func(nc *northup.Ctx) error {
				_, err := nc.RunPIM(1e6, 1e6, func() { ran = true })
				return err
			})
		}); err != nil {
			t.Fatal(err)
		}
		if !ran {
			t.Fatal("PIM body did not run")
		}
	}
}
