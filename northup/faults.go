package northup

// This file re-exports the fault-injection and resilience surface: a seeded
// deterministic injector (package fault) plus the runtime's retry/degradation
// policy (core.RetryPolicy), and a small text format for configuring both
// from a command line ("seed=42,rate=0.05,...", the northup-run --faults
// flag).

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/fault"
)

// Fault-injection and resilience types.
type (
	// FaultConfig sets the injector's seed and per-operation fault rates.
	FaultConfig = fault.Config
	// FaultInjector injects deterministic transfer/alloc/outage faults.
	FaultInjector = fault.Injector
	// FaultStats counts injected events.
	FaultStats = fault.Stats
	// FaultWindow is a half-open virtual-time outage interval.
	FaultWindow = fault.Window
	// RetryPolicy tunes the runtime's retries, backoff and per-op timeouts.
	RetryPolicy = core.RetryPolicy
	// ResilienceStats counts the runtime's fault-handling outcomes.
	ResilienceStats = core.ResilienceStats
)

// Processor class names for targeted outages.
const (
	ProcClassCPU = fault.ClassCPU
	ProcClassGPU = fault.ClassGPU
)

// NewFaultInjector creates an injector bound to the engine. Hand it to the
// runtime via Options.Faults before NewRuntime.
func NewFaultInjector(e *Engine, cfg FaultConfig) *FaultInjector {
	return fault.New(e, cfg)
}

// DefaultRetryPolicy returns the policy the runtime adopts when an injector
// is configured without an explicit one.
func DefaultRetryPolicy() RetryPolicy { return core.DefaultRetryPolicy() }

// IsTransientFault reports whether err is a retryable injected fault.
func IsTransientFault(err error) bool { return fault.IsTransient(err) }

// FaultOutage schedules one component offline for a window.
type FaultOutage struct {
	// Node is the tree-node ID (BFS order, root = 0).
	Node int
	// Class is a processor class ("gpu", "cpu") for a targeted outage, or
	// empty to take the whole node offline.
	Class string
	// Window is the outage interval.
	Window FaultWindow
}

// FaultPlan is a parsed fault specification: probabilistic rates plus any
// scheduled outages. Inject realizes it on an engine.
type FaultPlan struct {
	Config  FaultConfig
	Outages []FaultOutage
}

// Inject creates the injector on the engine and schedules the plan's
// outage windows.
func (p *FaultPlan) Inject(e *Engine) *FaultInjector {
	inj := fault.New(e, p.Config)
	for _, o := range p.Outages {
		if o.Class == "" {
			inj.TakeNodeOffline(o.Node, o.Window)
		} else {
			inj.TakeProcOffline(o.Node, o.Class, o.Window)
		}
	}
	return inj
}

// ParseFaults parses the command-line fault specification: comma-separated
// key=value pairs.
//
//	seed=N          PRNG seed (default 0)
//	rate=P          transfer failure probability in [0,1]
//	delay-rate=P    transfer delay probability in [0,1]
//	delay-us=D      injected delay in microseconds (default 500)
//	alloc-rate=P    transient alloc-failure probability in [0,1]
//	offline=SPEC    outage NODE[/CLASS]:FROM_MS:UNTIL_MS (repeatable)
//
// Example: "seed=42,rate=0.05,offline=1/gpu:2:5" fails 5% of transfers and
// takes node 1's GPU offline from 2ms to 5ms of virtual time.
func ParseFaults(spec string) (*FaultPlan, error) {
	p := &FaultPlan{}
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return nil, fmt.Errorf("faults: %q is not key=value", field)
		}
		var err error
		switch key {
		case "seed":
			p.Config.Seed, err = strconv.ParseInt(val, 10, 64)
		case "rate":
			p.Config.TransferFailRate, err = parseRate(val)
		case "delay-rate":
			p.Config.TransferDelayRate, err = parseRate(val)
		case "delay-us":
			var us float64
			if us, err = strconv.ParseFloat(val, 64); err == nil {
				if us <= 0 {
					return nil, fmt.Errorf("faults: delay-us=%q must be positive", val)
				}
				p.Config.TransferDelay = Time(us * float64(Microsecond))
			}
		case "alloc-rate":
			p.Config.AllocFailRate, err = parseRate(val)
		case "offline":
			var o FaultOutage
			if o, err = parseOutage(val); err == nil {
				p.Outages = append(p.Outages, o)
			}
		default:
			return nil, fmt.Errorf("faults: unknown key %q", key)
		}
		if err != nil {
			return nil, fmt.Errorf("faults: bad %s=%q: %v", key, val, err)
		}
	}
	return p, nil
}

// parseRate parses a probability and checks it is in [0,1].
func parseRate(s string) (float64, error) {
	r, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	if r < 0 || r > 1 {
		return 0, fmt.Errorf("rate %v outside [0,1]", r)
	}
	return r, nil
}

// parseOutage parses NODE[/CLASS]:FROM_MS:UNTIL_MS.
func parseOutage(s string) (FaultOutage, error) {
	parts := strings.Split(s, ":")
	if len(parts) != 3 {
		return FaultOutage{}, fmt.Errorf("want NODE[/CLASS]:FROM_MS:UNTIL_MS")
	}
	target := parts[0]
	var o FaultOutage
	if node, class, ok := strings.Cut(target, "/"); ok {
		target, o.Class = node, class
		if o.Class != ProcClassCPU && o.Class != ProcClassGPU {
			return FaultOutage{}, fmt.Errorf("unknown processor class %q", o.Class)
		}
	}
	node, err := strconv.Atoi(target)
	if err != nil || node < 0 {
		return FaultOutage{}, fmt.Errorf("bad node id %q", target)
	}
	o.Node = node
	from, err := strconv.ParseFloat(parts[1], 64)
	if err != nil {
		return FaultOutage{}, fmt.Errorf("bad from-ms %q", parts[1])
	}
	until, err := strconv.ParseFloat(parts[2], 64)
	if err != nil {
		return FaultOutage{}, fmt.Errorf("bad until-ms %q", parts[2])
	}
	o.Window = FaultWindow{From: Time(from * float64(Millisecond)),
		Until: Time(until * float64(Millisecond))}
	if o.Window.Until <= o.Window.From {
		return FaultOutage{}, fmt.Errorf("empty window [%vms,%vms)", from, until)
	}
	return o, nil
}
