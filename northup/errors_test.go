package northup_test

// Error-path coverage for the public API: programs that misuse the unified
// data-management interface get errors back, never panics.

import (
	"strings"
	"testing"

	"repro/northup"
)

func newTinyRuntime() *northup.Runtime {
	e := northup.NewEngine()
	tree := northup.APU(e, northup.APUConfig{Storage: northup.SSD,
		StorageMiB: 8, DRAMMiB: 1})
	return northup.NewRuntime(e, tree, northup.DefaultOptions())
}

func TestAllocBeyondCapacityReturnsError(t *testing.T) {
	rt := newTinyRuntime()
	_, err := rt.Run("overalloc", func(c *northup.Ctx) error {
		dram := c.Children()[0]
		if _, err := c.AllocAt(dram, 2*northup.MiB); err == nil {
			t.Error("allocating 2 MiB on a 1 MiB device succeeded")
		}
		// The failure must be clean: the device stays usable afterwards.
		b, err := c.AllocAt(dram, 256*northup.KiB)
		if err != nil {
			t.Errorf("device unusable after refused alloc: %v", err)
			return nil
		}
		return c.Release(b)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDoubleReleaseReturnsError(t *testing.T) {
	rt := newTinyRuntime()
	_, err := rt.Run("double-release", func(c *northup.Ctx) error {
		b, err := c.Alloc(4 * northup.KiB)
		if err != nil {
			return err
		}
		if err := c.Release(b); err != nil {
			t.Errorf("first release failed: %v", err)
		}
		if err := c.Release(b); err == nil {
			t.Error("double release succeeded")
		}
		if err := c.Release(nil); err == nil {
			t.Error("releasing nil succeeded")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMoveDataDownPastLeafReturnsError(t *testing.T) {
	rt := newTinyRuntime()
	_, err := rt.Run("past-leaf", func(c *northup.Ctx) error {
		leaf := c.Children()[0]
		a, err := c.AllocAt(leaf, 4*northup.KiB)
		if err != nil {
			return err
		}
		b, err := c.AllocAt(leaf, 4*northup.KiB)
		if err != nil {
			return err
		}
		defer c.Release(a)
		defer c.Release(b)
		return c.Descend(leaf, func(lc *northup.Ctx) error {
			if !lc.IsLeaf() {
				t.Fatal("expected to be at the leaf")
			}
			// There is no level below the leaf: data_down must refuse.
			if err := lc.MoveDataDown(b, a, 0, 0, 4*northup.KiB); err == nil {
				t.Error("move_data_down below the leaf succeeded")
			} else if !strings.Contains(err.Error(), "child") {
				t.Errorf("unhelpful error: %v", err)
			}
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMoveBeyondBufferBoundsReturnsError(t *testing.T) {
	rt := newTinyRuntime()
	_, err := rt.Run("bounds", func(c *northup.Ctx) error {
		src, err := c.Alloc(4 * northup.KiB)
		if err != nil {
			return err
		}
		dst, err := c.AllocAt(c.Children()[0], 4*northup.KiB)
		if err != nil {
			return err
		}
		defer c.Release(dst)
		if err := c.MoveDataDown(dst, src, 0, 0, 8*northup.KiB); err == nil {
			t.Error("move past the source's end succeeded")
		}
		if err := c.MoveDataDown(dst, src, 2*northup.KiB, 0, 3*northup.KiB); err == nil {
			t.Error("move past the destination's end succeeded")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
