package northup_test

import (
	"testing"

	"repro/northup"
)

// TestServePublicSurface drives the serving engine end-to-end through the
// public API: parse a DSL scenario, run it twice, and require identical
// per-tenant outcomes — the same-seed determinism promise.
func TestServePublicSurface(t *testing.T) {
	src := []byte(`
name: api-smoke
seed: 9
workers: 2
tenants:
  - name: t0
    rate: 100/s
    quota_mib: 16
    max_jobs: 6
    mix:
      - workload: gemm
        n: 128
      - workload: sort
        n: 5000
`)
	scn, err := northup.ParseScenario(src)
	if err != nil {
		t.Fatal(err)
	}
	run := func() *northup.ServeReport {
		eng, err := northup.NewServeEngine(scn, northup.ServeOptions{Phantom: true})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if len(a.Tenants) != 1 || a.Tenants[0].Completed != 6 {
		t.Fatalf("unexpected report: %+v", a)
	}
	if a.String() != b.String() {
		t.Fatalf("same seed diverged:\n%s\n%s", a.String(), b.String())
	}
	if a.Tenants[0].P99NS <= 0 {
		t.Fatalf("no p99 latency in report: %+v", a.Tenants[0])
	}
}
