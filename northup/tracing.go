package northup

// This file re-exports the event-tracing surface (package trace): a bounded
// deterministic recorder the runtime feeds when Options.Trace is set, the
// Chrome/Perfetto trace_event exporter, derived per-node metrics, and the
// critical-path walker. Tracing is off by default and costs one branch per
// potential event when disabled.

import (
	"fmt"
	"io"

	"repro/internal/trace"
)

// Event-tracing types.
type (
	// TraceOptions sizes the recorder's bounded ring buffer.
	TraceOptions = trace.Options
	// TraceRecorder collects events in virtual-time order. Hand it to the
	// runtime via Options.Trace before NewRuntime.
	TraceRecorder = trace.Recorder
	// TraceEvent is one recorded span, instant, or counter sample.
	TraceEvent = trace.Event
	// TraceLane is a timeline lane: a (tree node, track) pair.
	TraceLane = trace.Lane
	// TraceSummary holds per-node metrics derived from an event stream:
	// lane utilization, achieved bandwidth, steal counts, queue depth.
	TraceSummary = trace.Summary
	// TraceSummaryOptions customises SummarizeTrace (window, nominal BW).
	TraceSummaryOptions = trace.SummaryOptions
	// TraceCritPath is a chain of segments tiling the analysis window;
	// its Length always equals the window (makespan attribution).
	TraceCritPath = trace.CritPath
	// TraceExportOptions customises the Chrome trace_event export.
	TraceExportOptions = trace.ChromeExportOptions
	// ParsedTrace is a trace file read back for offline analysis.
	ParsedTrace = trace.ParsedTrace
)

// NewTraceRecorder returns a recorder; a zero MaxEvents keeps the default
// ring capacity.
func NewTraceRecorder(opts TraceOptions) *TraceRecorder {
	return trace.NewRecorder(opts)
}

// WriteChromeTrace writes events as Chrome trace_event JSON, loadable in
// Perfetto (ui.perfetto.dev) or chrome://tracing. Output is byte-identical
// for identical event streams.
func WriteChromeTrace(w io.Writer, events []TraceEvent, opt TraceExportOptions) error {
	return trace.WriteChromeTrace(w, events, opt)
}

// ParseChromeTrace reads back a trace produced by WriteChromeTrace.
func ParseChromeTrace(data []byte) (*ParsedTrace, error) {
	return trace.ParseChromeTrace(data)
}

// ValidateChromeTrace checks that data is a well-formed Chrome trace.
func ValidateChromeTrace(data []byte) error {
	return trace.ValidateChromeTrace(data)
}

// SummarizeTrace derives per-node metrics from an event stream.
func SummarizeTrace(events []TraceEvent, opt TraceSummaryOptions) *TraceSummary {
	return trace.Summarize(events, opt)
}

// TraceCriticalPath walks the event stream backward from the end of the
// window, attributing every instant of the makespan to the latest-ending
// span covering it (or to idle time).
func TraceCriticalPath(events []TraceEvent, opt TraceSummaryOptions) *TraceCritPath {
	return trace.CriticalPath(events, opt)
}

// TraceLaneNames returns the distinct lane names of an event stream in
// display order ("node0/io", "node1/gpu", ...).
func TraceLaneNames(events []TraceEvent) []string {
	return trace.LaneNames(events)
}

// TraceNodeLabeler returns a NodeLabel function describing the tree's nodes
// ("dram L1", "ssd L0") for the exporter's process names.
func TraceNodeLabeler(t *Tree) func(int) string {
	return func(id int) string {
		if id < 0 || id >= t.NumNodes() {
			return ""
		}
		n := t.Node(id)
		return fmt.Sprintf("%s L%d", n.Mem.Kind(), n.Level)
	}
}

// NominalBandwidth maps every tree node to its device's nominal sequential
// read bandwidth in GB/s, for the summary's achieved-vs-nominal column.
func NominalBandwidth(t *Tree) map[int]float64 {
	bw := make(map[int]float64, t.NumNodes())
	for _, n := range t.Nodes() {
		bw[n.ID] = n.Mem.Profile().ReadBW / 1e9
	}
	return bw
}
