package northup

import (
	"repro/internal/apps/gemm"
	"repro/internal/apps/hotspot"
	"repro/internal/apps/oocsort"
	"repro/internal/apps/spmv"
	"repro/internal/sched"
	"repro/internal/taskgraph"
	"repro/internal/workload"
)

// This file re-exports the paper's three case-study applications (§IV) so
// downstream users can run them — or crib them as templates for their own
// recursive Northup programs — without reaching into internal packages.

// Dense matrix multiply (§IV-A).
type (
	// GEMMConfig parameterizes a dense-matrix-multiply run.
	GEMMConfig = gemm.Config
	// GEMMResult carries its output and measurements.
	GEMMResult = gemm.Result
)

// GEMM entry points: the Northup out-of-core run and the in-memory
// baseline it is normalized against.
var (
	GEMMNorthup  = gemm.RunNorthup
	GEMMInMemory = gemm.RunInMemory
	// GEMMReference is the host oracle: C = A(n x k) * B(k x m).
	GEMMReference = gemm.Reference
)

// HotSpot-2D thermal stencil (§IV-B, §V-E).
type (
	// HotSpotConfig parameterizes a stencil run.
	HotSpotConfig = hotspot.Config
	// HotSpotResult carries its output and measurements.
	HotSpotResult = hotspot.Result
	// StealConfig parameterizes the CPU+GPU load-balancing variant.
	StealConfig = hotspot.StealConfig
	// StealResult extends HotSpotResult with scheduling statistics.
	StealResult = hotspot.StealResult
	// StealMode selects GPU-only or CPU+GPU leaf execution.
	StealMode = hotspot.StealMode
	// MultiBranchConfig parameterizes chunk scheduling across several
	// staging subtrees (asymmetric trees, Figure 2).
	MultiBranchConfig = hotspot.MultiBranchConfig
	// MultiBranchResult reports per-branch chunk counts.
	MultiBranchResult = hotspot.MultiBranchResult
	// BranchPolicy selects static or dynamic chunk-to-subtree assignment.
	BranchPolicy = hotspot.BranchPolicy
)

// Branch policies for multi-branch runs.
const (
	// StaticPartition splits chunks evenly across subtrees up front.
	StaticPartition = hotspot.StaticPartition
	// DynamicQueue balances subtrees through a shared root work queue.
	DynamicQueue = hotspot.DynamicQueue
)

// HotSpotProfiledResult extends HotSpotResult with the §III-E mapping
// decisions.
type HotSpotProfiledResult = hotspot.ProfiledResult

// HotSpot entry points.
var (
	HotSpotNorthup  = hotspot.RunNorthup
	HotSpotInMemory = hotspot.RunInMemory
	// HotSpotSteal runs the queue-based CPU+GPU work-stealing variant.
	HotSpotSteal = hotspot.RunSteal
	// HotSpotProfiled runs with profile-guided chunk placement (§III-E).
	HotSpotProfiled = hotspot.RunProfiled
	// HotSpotMultiBranch schedules chunks across the root's staging
	// subtrees (asymmetric trees; build one with MultiBranch).
	HotSpotMultiBranch = hotspot.RunMultiBranch
	// HotSpotReference advances the full grid by global Jacobi steps.
	HotSpotReference = hotspot.Reference
	// HotSpotReferenceBlocked is the blocked-semantics oracle matching
	// out-of-core passes with more than one iteration.
	HotSpotReferenceBlocked = hotspot.ReferenceBlocked
)

// Leaf execution modes of the stealing variant.
const (
	// GPUOnly runs all leaf tasks on GPU queues.
	GPUOnly = hotspot.GPUOnly
	// CPUGPU spreads tasks over CPU and GPU queues with stealing.
	CPUGPU = hotspot.CPUGPU
)

// CSR-Adaptive sparse matrix-vector multiply (§IV-C).
type (
	// SpMVConfig parameterizes a SpMV run.
	SpMVConfig = spmv.Config
	// SpMVResult carries its output and measurements.
	SpMVResult = spmv.Result
	// CSR is a sparse matrix in compressed-sparse-row form.
	CSR = workload.CSR
	// SparseKind selects a synthetic sparse structure.
	SparseKind = workload.SparseKind
)

// SpMV entry points.
var (
	SpMVNorthup  = spmv.RunNorthup
	SpMVInMemory = spmv.RunInMemory
	// SpMVReference is the host oracle: y = A x.
	SpMVReference = spmv.Reference
)

// Extent-declared task graphs and the data-affinity scheduler: tasks
// declare the buffer ranges they read and write plus a cost estimate, the
// graph derives dependencies from extent overlap, and placement is either
// locality-blind work stealing or residency-aware affinity scoring
// (estimated compute + estimated bytes to move, cache-resident bytes
// scoring zero).
type (
	// TaskExtent is a half-open byte range of a staged buffer.
	TaskExtent = taskgraph.Extent
	// Task is one unit of work with declared extents and cost.
	Task = taskgraph.Task
	// TaskGraph holds tasks plus the dependencies implied by their extents.
	TaskGraph = taskgraph.Graph
	// TaskOptions selects workers and the placement policy.
	TaskOptions = taskgraph.Options
	// TaskStats reports pops, steals, affinity picks and saved bytes.
	TaskStats = taskgraph.Stats
	// ProfileScheduler is the §III-E profile-guided mapper; its learned
	// state round-trips through ExportJSON/ImportJSON to warm-start runs.
	ProfileScheduler = sched.ProfileScheduler
)

// Task-graph entry points.
var (
	// NewTaskGraph returns an empty graph; Add tasks in program order.
	NewTaskGraph = taskgraph.New
	// GEMMTasks runs dense matrix multiply as a shard task graph.
	GEMMTasks = gemm.RunTasks
	// SpMVTasks runs the sparse power iteration as a chunk task graph.
	SpMVTasks = spmv.RunTasks
	// NewProfileScheduler returns a cold profile-guided mapper.
	NewProfileScheduler = sched.NewProfileScheduler
	// HotSpotProfiledWarm is HotSpotProfiled seeded with an imported
	// profile, skipping the exploration phase.
	HotSpotProfiledWarm = hotspot.RunProfiledWarm
)

// Out-of-core sorting: a fourth application demonstrating the combine
// phase of divide-and-conquer (sorted runs from the leaves, k-way merges
// on the way back up).
type (
	// SortConfig parameterizes an out-of-core sort.
	SortConfig = oocsort.Config
	// SortResult carries its output, run and merge-pass counts.
	SortResult = oocsort.Result
)

// Sort entry points.
var (
	// Sort runs the out-of-core merge sort.
	Sort = oocsort.Run
	// SortKeys generates the deterministic input sequence.
	SortKeys = oocsort.Keys
)

// Matrix Market I/O: feed real University of Florida collection files to
// SpMV via SpMVConfig.Matrix.
var (
	// ParseMatrixMarket reads coordinate-format Matrix Market input
	// (real/integer/pattern, general/symmetric) into CSR.
	ParseMatrixMarket = workload.ParseMatrixMarket
	// WriteMatrixMarket writes a CSR matrix in coordinate/real/general form.
	WriteMatrixMarket = workload.WriteMatrixMarket
)

// Synthetic input generators (the Florida-collection substitute).
var (
	// DenseInput returns a deterministic rows x cols float32 matrix.
	DenseInput = workload.Dense
	// SparseInput returns a deterministic CSR matrix.
	SparseInput = workload.Sparse
	// VectorInput returns a deterministic dense vector.
	VectorInput = workload.Vector
	// HotSpotGridInput returns a deterministic thermal problem.
	HotSpotGridInput = workload.HotSpotGrid
)

// Sparse structure kinds.
const (
	// SparseUniform gives regular short rows (CSR-Stream territory).
	SparseUniform = workload.SparseUniform
	// SparsePowerLaw gives heavy-tailed rows (CSR-Vector/VectorL).
	SparsePowerLaw = workload.SparsePowerLaw
	// SparseBanded concentrates non-zeros near the diagonal.
	SparseBanded = workload.SparseBanded
)
