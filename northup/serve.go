package northup

// This file re-exports the multi-tenant traffic engine (package serve):
// a declarative scenario DSL (YAML/JSON, see specs/scenarios/) describing
// tenants with Poisson arrival rates, workload mixes over the case-study
// kernels, per-tenant memory quotas and latency SLOs, executed against one
// shared topology tree with admission control and weighted fair queueing.
// Runs are deterministic: the same scenario and seed reproduce reports,
// job records and metrics byte for byte.

import (
	"repro/internal/ops"
	"repro/internal/serve"
)

// Live-operations types surfaced through the serve report and admin plane.
type (
	// OpsAlertEvent is one deterministic fire/resolve transition in the
	// alert timeline.
	OpsAlertEvent = ops.AlertEvent
	// OpsFiringAlert is one currently-active alert in a health snapshot.
	OpsFiringAlert = ops.FiringAlert
	// OpsAttribution is the top-K hot-lane/hot-kernel report attached to
	// a firing alert's burn window.
	OpsAttribution = ops.Attribution
)

// Multi-tenant serving types.
type (
	// Scenario is a parsed serving scenario: topology, workers, tenants.
	Scenario = serve.Scenario
	// ScenarioTenant declares one tenant: arrival rate, WFQ weight,
	// memory quota, SLO and workload mix.
	ScenarioTenant = serve.Tenant
	// ScenarioMixEntry is one weighted workload in a tenant's mix.
	ScenarioMixEntry = serve.MixEntry
	// ScenarioTopology selects the shared tree preset and capacities.
	ScenarioTopology = serve.TopoSpec
	// ServeEngine admits, queues and executes tenant jobs on the tree.
	ServeEngine = serve.Engine
	// ServeOptions tunes a run (phantom vs functional execution).
	ServeOptions = serve.RunOptions
	// ServeReport is the per-tenant service-quality summary (p50/p99
	// virtual-time latency, throughput, rejections, SLO violations).
	ServeReport = serve.Report
	// ServeTenantReport is one tenant's slice of the report.
	ServeTenantReport = serve.TenantReport
	// ServeJobRecord is one completed (or failed) job in the log.
	ServeJobRecord = serve.JobRecord
	// ServeOpsSpec configures the scenario's live operations plane
	// (window width, evaluation step, attribution depth).
	ServeOpsSpec = serve.OpsSpec
	// ServeAlertRule is one declarative multiwindow burn-rate alert.
	ServeAlertRule = serve.AlertRule
	// ServeEngineStats is the report's simulation-engine cost profile.
	ServeEngineStats = serve.EngineStats
	// ServeLive wraps an engine for wall-clock-paced execution with the
	// HTTP admin plane (/metrics, /healthz, /tenants, /alerts).
	ServeLive = serve.Live
	// ServeTenantHealth is one tenant's entry in the /tenants document.
	ServeTenantHealth = serve.TenantHealth
)

// Alert-rule metric selectors (see serve.AlertRule.Metric).
const (
	ServeMetricSLOBurn     = serve.MetricSLOBurn
	ServeMetricRejectRatio = serve.MetricRejectRatio
	ServeMetricErrorRatio  = serve.MetricErrorRatio
	ServeMetricP99         = serve.MetricP99
	ServeMetricQueueDepth  = serve.MetricQueueDepth
)

// Workload names accepted in a scenario mix.
const (
	ServeWorkloadGEMM    = serve.WorkloadGEMM
	ServeWorkloadSpMV    = serve.WorkloadSpMV
	ServeWorkloadHotSpot = serve.WorkloadHotSpot
	ServeWorkloadSort    = serve.WorkloadSort
)

var (
	// ParseScenario decodes and validates a YAML or JSON scenario.
	ParseScenario = serve.ParseScenario
	// NewServeEngine builds an engine for a scenario; defaults are applied
	// to a private copy, so the scenario may be reused.
	NewServeEngine = serve.New
	// NewServeLive wraps an unstarted engine for paced live execution.
	NewServeLive = serve.NewLive
)
