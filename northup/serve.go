package northup

// This file re-exports the multi-tenant traffic engine (package serve):
// a declarative scenario DSL (YAML/JSON, see specs/scenarios/) describing
// tenants with Poisson arrival rates, workload mixes over the case-study
// kernels, per-tenant memory quotas and latency SLOs, executed against one
// shared topology tree with admission control and weighted fair queueing.
// Runs are deterministic: the same scenario and seed reproduce reports,
// job records and metrics byte for byte.

import "repro/internal/serve"

// Multi-tenant serving types.
type (
	// Scenario is a parsed serving scenario: topology, workers, tenants.
	Scenario = serve.Scenario
	// ScenarioTenant declares one tenant: arrival rate, WFQ weight,
	// memory quota, SLO and workload mix.
	ScenarioTenant = serve.Tenant
	// ScenarioMixEntry is one weighted workload in a tenant's mix.
	ScenarioMixEntry = serve.MixEntry
	// ScenarioTopology selects the shared tree preset and capacities.
	ScenarioTopology = serve.TopoSpec
	// ServeEngine admits, queues and executes tenant jobs on the tree.
	ServeEngine = serve.Engine
	// ServeOptions tunes a run (phantom vs functional execution).
	ServeOptions = serve.RunOptions
	// ServeReport is the per-tenant service-quality summary (p50/p99
	// virtual-time latency, throughput, rejections, SLO violations).
	ServeReport = serve.Report
	// ServeTenantReport is one tenant's slice of the report.
	ServeTenantReport = serve.TenantReport
	// ServeJobRecord is one completed (or failed) job in the log.
	ServeJobRecord = serve.JobRecord
)

// Workload names accepted in a scenario mix.
const (
	ServeWorkloadGEMM    = serve.WorkloadGEMM
	ServeWorkloadSpMV    = serve.WorkloadSpMV
	ServeWorkloadHotSpot = serve.WorkloadHotSpot
	ServeWorkloadSort    = serve.WorkloadSort
)

var (
	// ParseScenario decodes and validates a YAML or JSON scenario.
	ParseScenario = serve.ParseScenario
	// NewServeEngine builds an engine for a scenario; defaults are applied
	// to a private copy, so the scenario may be reused.
	NewServeEngine = serve.New
)
