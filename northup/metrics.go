package northup

// This file re-exports the continuous-metrics surface (package obs): a
// deterministic typed registry — counters, gauges, fixed-bucket virtual-time
// histograms — the runtime populates when Options.Metrics is set, a
// virtual-time sampler turning gauges into time series, and the Prometheus
// text / JSON exporters. Metrics are off by default and cost one branch per
// potential observation when disabled.

import (
	"io"

	"repro/internal/obs"
)

// Continuous-metrics types.
type (
	// MetricsRegistry is the deterministic metric registry. Hand a fresh one
	// to the runtime via Options.Metrics before NewRuntime, then export it
	// after Run with WriteMetricsPrometheus / WriteMetricsJSON.
	MetricsRegistry = obs.Registry
	// MetricsSampler snapshots every gauge at a fixed virtual-time tick,
	// producing deterministic time series (queue depth, cache hit rate,
	// bandwidth utilization over the run). Attach via Options.Sampler.
	MetricsSampler = obs.Sampler
	// SamplerOptions sets the sampler's tick and point cap.
	SamplerOptions = obs.SamplerOptions
	// MetricPoint is one flattened (name, kind, value) sample of a registry.
	MetricPoint = obs.Point
	// MetricSeries is one gauge's sampled time series.
	MetricSeries = obs.Series
)

// NewMetricsRegistry returns an empty registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewMetricsSampler attaches a sampler to a registry; a non-positive Tick
// returns nil, which every consumer treats as "sampling disabled".
func NewMetricsSampler(reg *MetricsRegistry, opts SamplerOptions) *MetricsSampler {
	return obs.NewSampler(reg, opts)
}

// WriteMetricsPrometheus renders the registry in the Prometheus text
// exposition format. Identical runs produce byte-identical output.
func WriteMetricsPrometheus(w io.Writer, reg *MetricsRegistry) error {
	return reg.WritePrometheus(w)
}

// WriteMetricsJSON renders the registry — and, with a non-nil sampler, the
// sampled time series — as a JSON document (schema northup-metrics/v1).
func WriteMetricsJSON(w io.Writer, reg *MetricsRegistry, s *MetricsSampler) error {
	return reg.WriteJSON(w, s)
}
