package northup_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/trace"
	"repro/northup"
)

// meteredGEMM runs one fixed GEMM workload with the continuous metrics
// registry (and optionally the sampler) attached via the public API.
func meteredGEMM(t *testing.T, tick northup.Time) (northup.RunStats, *northup.MetricsRegistry, *northup.MetricsSampler) {
	t.Helper()
	e := northup.NewEngine()
	tree := northup.APU(e, northup.APUConfig{Storage: northup.SSD,
		StorageMiB: 512, DRAMMiB: 16, WithCPU: true})
	opts := northup.DefaultOptions()
	reg := northup.NewMetricsRegistry()
	opts.Metrics = reg
	sampler := northup.NewMetricsSampler(reg, northup.SamplerOptions{Tick: tick})
	opts.Sampler = sampler
	rt := northup.NewRuntime(e, tree, opts)
	res, err := northup.GEMMNorthup(rt, northup.GEMMConfig{N: 192, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return res.Stats, reg, sampler
}

// TestMetricsPublicSurface checks the re-exported registry/sampler surface
// end to end: metrics accumulate during a public-API run, both exporters
// are deterministic across identical runs, and the busy-time counters
// reconcile with the run's Breakdown.
func TestMetricsPublicSurface(t *testing.T) {
	export := func() (northup.RunStats, string, string) {
		stats, reg, sampler := meteredGEMM(t, 100*northup.Microsecond)
		var prom, js bytes.Buffer
		if err := northup.WriteMetricsPrometheus(&prom, reg); err != nil {
			t.Fatal(err)
		}
		if err := northup.WriteMetricsJSON(&js, reg, sampler); err != nil {
			t.Fatal(err)
		}
		return stats, prom.String(), js.String()
	}
	stats, prom, js := export()
	_, prom2, js2 := export()
	if prom != prom2 || js != js2 {
		t.Fatal("identical runs exported different metrics")
	}
	if !strings.Contains(prom, "# TYPE northup_busy_ns_total counter") {
		t.Error("Prometheus export lacks the busy-time counter family")
	}
	var doc struct {
		Schema  string `json:"schema"`
		Metrics []struct {
			Name  string  `json:"name"`
			Value float64 `json:"value"`
		} `json:"metrics"`
		Series []struct {
			Name   string `json:"name"`
			Points []struct {
				T int64   `json:"t_ns"`
				V float64 `json:"v"`
			} `json:"points"`
		} `json:"series"`
	}
	if err := json.Unmarshal([]byte(js), &doc); err != nil {
		t.Fatalf("JSON export unparsable: %v", err)
	}
	if doc.Schema != "northup-metrics/v1" {
		t.Errorf("schema %q", doc.Schema)
	}
	if len(doc.Series) == 0 {
		t.Error("sampler produced no time series")
	}
	var gpuBusy float64
	for _, m := range doc.Metrics {
		if m.Name == `northup_busy_ns_total{cat="gpu"}` {
			gpuBusy = m.Value
		}
	}
	if got := northup.Time(gpuBusy); got != stats.Breakdown.Busy(trace.GPUCompute) {
		t.Errorf("metric GPU busy %v, Breakdown says %v", got,
			stats.Breakdown.Busy(trace.GPUCompute))
	}
}
