package northup_test

import (
	"strings"
	"testing"

	"repro/northup"
)

func TestParseFaultsFullSpec(t *testing.T) {
	p, err := northup.ParseFaults(
		"seed=42,rate=0.05,delay-rate=0.1,delay-us=250,alloc-rate=0.02," +
			"offline=1/gpu:2:5,offline=0:10:20")
	if err != nil {
		t.Fatal(err)
	}
	c := p.Config
	if c.Seed != 42 || c.TransferFailRate != 0.05 || c.TransferDelayRate != 0.1 ||
		c.AllocFailRate != 0.02 {
		t.Fatalf("parsed config %+v", c)
	}
	if c.TransferDelay != 250*northup.Microsecond {
		t.Fatalf("delay = %v", c.TransferDelay)
	}
	if len(p.Outages) != 2 {
		t.Fatalf("parsed %d outages", len(p.Outages))
	}
	o := p.Outages[0]
	if o.Node != 1 || o.Class != northup.ProcClassGPU ||
		o.Window.From != 2*northup.Millisecond || o.Window.Until != 5*northup.Millisecond {
		t.Fatalf("outage[0] = %+v", o)
	}
	if p.Outages[1].Class != "" || p.Outages[1].Node != 0 {
		t.Fatalf("outage[1] = %+v", p.Outages[1])
	}
}

func TestParseFaultsRejectsGarbage(t *testing.T) {
	for _, spec := range []string{
		"seed",                  // not key=value
		"tempo=1",               // unknown key
		"rate=1.5",              // rate out of [0,1]
		"rate=x",                // unparsable
		"seed=1e9",              // seeds are integers
		"delay-us=-3",           // non-positive delay
		"offline=1:5",           // missing field
		"offline=1/tpu:0:5",     // unknown processor class
		"offline=banana:0:5",    // bad node
		"offline=1:5:5",         // empty window
		"offline=1/gpu:bad:5",   // bad from
		"offline=1/gpu:0:worse", // bad until
	} {
		if _, err := northup.ParseFaults(spec); err == nil {
			t.Errorf("ParseFaults(%q) accepted", spec)
		}
	}
}

func TestParseFaultsIgnoresEmptyFields(t *testing.T) {
	p, err := northup.ParseFaults(" seed=7 , ,rate=0.5,")
	if err != nil {
		t.Fatal(err)
	}
	if p.Config.Seed != 7 || p.Config.TransferFailRate != 0.5 {
		t.Fatalf("parsed %+v", p.Config)
	}
}

// TestFaultInjectionThroughPublicAPI drives the whole resilience surface
// from outside: parse a spec, inject it, run a transfer loop that must
// survive the faults, and read back both counter sets.
func TestFaultInjectionThroughPublicAPI(t *testing.T) {
	plan, err := northup.ParseFaults("seed=13,rate=0.3,alloc-rate=0.2")
	if err != nil {
		t.Fatal(err)
	}
	e := northup.NewEngine()
	tree := northup.APU(e, northup.APUConfig{Storage: northup.SSD,
		StorageMiB: 32, DRAMMiB: 4})
	opts := northup.DefaultOptions()
	opts.Faults = plan.Inject(e)
	opts.Retry = northup.DefaultRetryPolicy()
	rt := northup.NewRuntime(e, tree, opts)

	const n = 64 * northup.KiB
	_, err = rt.Run("survive", func(c *northup.Ctx) error {
		src, err := c.Alloc(n)
		if err != nil {
			return err
		}
		for i := 0; i < 40; i++ {
			buf, err := c.AllocAt(c.Children()[0], n)
			if err != nil {
				return err
			}
			if err := c.MoveDataDown(buf, src, 0, 0, n); err != nil {
				return err
			}
			if err := c.Release(buf); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !opts.Faults.Stats().Any() {
		t.Fatal("injector stats empty at 30%/20% rates")
	}
	res := rt.Resilience()
	if res.Retries == 0 || res.GaveUp != 0 {
		t.Fatalf("resilience counters off: %v", res)
	}
	if !strings.Contains(rt.ResilienceReport(), "injected") {
		t.Error("resilience report missing injected-stats row")
	}
}
