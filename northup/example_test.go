package northup_test

import (
	"fmt"
	"log"

	"repro/northup"
)

// Example builds a two-level machine and runs a minimal recursive job:
// one chunk moved down, computed at the leaf, moved back up. Virtual time
// is deterministic, so the output is stable.
func Example() {
	e := northup.NewEngine()
	b := northup.NewBuilder(e)
	root := b.Root(northup.SSDProfile(16*northup.MiB, 1400, 600))
	dram := b.Child(root, northup.DRAMProfile(1*northup.MiB))
	b.Attach(dram, northup.APUGPU(e))
	tree, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	rt := northup.NewRuntime(e, tree, northup.DefaultOptions())

	const chunk = 64 * northup.KiB
	stats, err := rt.Run("hello", func(c *northup.Ctx) error {
		src, err := c.Alloc(chunk) // on storage (level 0)
		if err != nil {
			return err
		}
		child := c.Children()[0]
		buf, err := c.AllocAt(child, chunk) // setup_buffers
		if err != nil {
			return err
		}
		if err := c.MoveDataDown(buf, src, 0, 0, chunk); err != nil { // data_down
			return err
		}
		err = c.Descend(child, func(lc *northup.Ctx) error { // northup_spawn
			fmt.Printf("computing at level %d of %d (leaf: %v)\n",
				lc.Level(), lc.MaxLevel(), lc.IsLeaf())
			_, kerr := lc.LaunchKernel(northup.Kernel{
				Name: "noop", FlopsPerGroup: 1e6, BytesPerGroup: float64(chunk),
			}, 8)
			return kerr
		})
		if err != nil {
			return err
		}
		if err := c.MoveDataUp(src, buf, 0, 0, chunk); err != nil { // data_up
			return err
		}
		c.Release(buf)
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("chunk processed in %v of virtual time\n", stats.Elapsed)
	// Output:
	// computing at level 1 of 1 (leaf: true)
	// chunk processed in 484.8µs of virtual time
}

// ExamplePiecesToFit shows the §III-B capacity-driven blocking decision.
func ExamplePiecesToFit() {
	totalBytes := int64(1 << 30)  // a 1 GiB working set
	freeBytes := int64(300 << 20) // a 300 MiB staging level
	buffersPerPiece := 2          // double buffering
	fmt.Println(northup.PiecesToFit(totalBytes, freeBytes, buffersPerPiece))
	// Output:
	// 7
}

// ExampleParseSpec builds a topology from its declarative JSON form.
func ExampleParseSpec() {
	spec, err := northup.ParseSpec([]byte(`{
	  "name": "tiny",
	  "nodes": [
	    {"name": "ssd", "device": "ssd", "capacity_mib": 64},
	    {"name": "dram", "parent": "ssd", "device": "dram", "capacity_mib": 8,
	     "procs": ["apu-gpu"]}
	  ]
	}`))
	if err != nil {
		log.Fatal(err)
	}
	tree, err := northup.BuildSpec(northup.NewEngine(), spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(tree)
	// Output:
	// node0(ssd,L0) cap=64MiB
	//   node1(mem,L1) cap=8MiB +apu-gpu(gpu)
}
