package repro

// Streaming-engine equivalence properties: for any workload, seed, sub-chunk
// count, fault schedule, and cache setting, a run routing its staging moves
// through the streaming transfer engine must produce results byte-identical
// to the monolithic store-and-forward run — sub-chunked pipelined hops move
// the same bytes — and equal seeds must replay identical stream counters.

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/apps/gemm"
	"repro/internal/apps/hotspot"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/topo"
)

// streamCase is one drawn workload: which app, which input seed, how finely
// the moves are sub-chunked, and how hostile the environment is.
type streamCase struct {
	app       int     // 0 gemm, 1 hotspot
	seed      int64   // input-generation seed
	subChunks int     // requested sub-chunks per move (0 = adaptive)
	faultRate float64 // transfer-failure probability (0 = clean)
	cached    bool    // staging cache on alongside streaming
}

// drawStreamCase maps raw generator bytes onto a streamCase.
func drawStreamCase(app, seed, sc, faults, cached uint8) streamCase {
	counts := []int{0, 1, 2, 3, 5, 7}
	rates := []float64{0, 0.03, 0.06}
	return streamCase{
		app:       int(app) % 2,
		seed:      int64(seed%16) + 1,
		subChunks: counts[int(sc)%len(counts)],
		faultRate: rates[int(faults)%len(rates)],
		cached:    cached%2 == 1,
	}
}

// runStreamCase executes the drawn workload on the 3-level discrete tree —
// the topology where staging moves genuinely cross two hops — and returns
// the result bytes plus the run's stream counters.
func runStreamCase(t *testing.T, cc streamCase, streamed bool) ([]byte, core.StreamStats) {
	t.Helper()
	e := sim.NewEngine()
	tree := topo.Discrete(e, topo.DiscreteConfig{Storage: topo.SSD,
		StorageMiB: 64, DRAMMiB: 8, GPUMemMiB: 4})
	opts := core.DefaultOptions()
	if cc.cached {
		opts.Cache = core.CacheOptions{Enabled: true, Prefetch: true}
	}
	if cc.faultRate > 0 {
		opts.Faults = fault.New(e, fault.Config{Seed: 2000 + cc.seed, TransferFailRate: cc.faultRate})
	}
	rt := core.NewRuntime(e, tree, opts)
	so := core.StreamOptions{SubChunks: cc.subChunks, MinSubChunkBytes: 512}

	var out []byte
	var err error
	switch cc.app {
	case 0:
		var res *gemm.Result
		res, err = gemm.RunNorthup(rt, gemm.Config{N: 128, Seed: cc.seed, ShardDim: 64,
			Streamed: streamed, StreamOpts: so})
		if err == nil {
			out = f32bytes(res.C)
		}
	default:
		var res *hotspot.Result
		// Two passes so the cached power chunks are genuinely re-read while
		// the streamed temperature chunks cycle up and back down.
		res, err = hotspot.RunNorthup(rt, hotspot.Config{N: 128, Seed: cc.seed,
			ChunkDim: 64, Iters: 2, Passes: 2, Streamed: streamed, StreamOpts: so})
		if err == nil {
			out = f32bytes(res.Temp)
		}
	}
	if err != nil {
		t.Fatalf("case %+v streamed=%v: %v", cc, streamed, err)
	}
	return out, rt.StreamStats()
}

func TestQuickStreamedMatchesMonolithicBitForBit(t *testing.T) {
	if testing.Short() {
		t.Skip("property sweep is slow in -short mode")
	}
	seen := 0
	overlapped := int64(0)
	prop := func(app, seed, sc, faults, cached uint8) bool {
		cc := drawStreamCase(app, seed, sc, faults, cached)
		plain, plainStats := runStreamCase(t, cc, false)
		streamedOut, ss := runStreamCase(t, cc, true)
		if plainStats.Streams != 0 {
			t.Errorf("case %+v: monolithic run counted stream traffic: %+v", cc, plainStats)
			return false
		}
		if ss.Streams == 0 {
			t.Errorf("case %+v: streamed run never engaged the engine", cc)
			return false
		}
		if !bytes.Equal(plain, streamedOut) {
			t.Errorf("case %+v: streamed result differs from monolithic", cc)
			return false
		}
		// Equal seeds replay equal schedules: the counters, not just the
		// bytes, must reproduce.
		_, ss2 := runStreamCase(t, cc, true)
		if ss != ss2 {
			t.Errorf("case %+v: stream counters did not replay: %+v vs %+v", cc, ss, ss2)
			return false
		}
		seen++
		if ss.MaxInFlight > 1 {
			overlapped++
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
	if seen == 0 || overlapped == 0 {
		t.Fatalf("property exercised %d cases, %d with pipeline overlap; the engine never pipelined", seen, overlapped)
	}
	t.Logf("verified %d cases, %d with in-flight overlap", seen, overlapped)
}

func TestStreamedRunBitCorrectUnderFaultsAndCache(t *testing.T) {
	// The directed version of the property for each app at a fixed hostile
	// rate with the cache on, asserting the faults actually engaged (retries
	// observed) and the moves were genuinely sub-chunked — so a regression
	// cannot hide behind a quiet schedule or a degenerate split.
	for app := 0; app < 2; app++ {
		cc := streamCase{app: app, seed: 9, subChunks: 4, faultRate: 0.05, cached: true}
		plain, _ := runStreamCase(t, cc, false)
		e := sim.NewEngine()
		tree := topo.Discrete(e, topo.DiscreteConfig{Storage: topo.SSD,
			StorageMiB: 64, DRAMMiB: 8, GPUMemMiB: 4})
		opts := core.DefaultOptions()
		opts.Cache = core.CacheOptions{Enabled: true, Prefetch: true}
		opts.Faults = fault.New(e, fault.Config{Seed: 2000 + cc.seed, TransferFailRate: cc.faultRate})
		rt := core.NewRuntime(e, tree, opts)
		so := core.StreamOptions{SubChunks: cc.subChunks, MinSubChunkBytes: 512}
		var streamedOut []byte
		if app == 0 {
			res, err := gemm.RunNorthup(rt, gemm.Config{N: 128, Seed: cc.seed, ShardDim: 64,
				Streamed: true, StreamOpts: so})
			if err != nil {
				t.Fatal(err)
			}
			streamedOut = f32bytes(res.C)
		} else {
			res, err := hotspot.RunNorthup(rt, hotspot.Config{N: 128, Seed: cc.seed,
				ChunkDim: 64, Iters: 2, Passes: 2, Streamed: true, StreamOpts: so})
			if err != nil {
				t.Fatal(err)
			}
			streamedOut = f32bytes(res.Temp)
		}
		if !bytes.Equal(plain, streamedOut) {
			t.Errorf("app %d: streamed faulted run differs from monolithic faulted run", app)
		}
		if ss := rt.StreamStats(); ss.SubChunks <= ss.Streams {
			t.Errorf("app %d: moves not sub-chunked (stats %+v)", app, ss)
		}
		if r := rt.Resilience(); r.Retries == 0 {
			t.Errorf("app %d: fault schedule never engaged", app)
		}
	}
}
